package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get issues a GET and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestHTTPInstrumentation drives a few routes through the middleware and
// checks the RED families: per-route/method/code counters, per-route
// duration histograms, and the in-flight gauge back at zero.
func TestHTTPInstrumentation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	if code, _ := get(t, srv.URL+"/v1/jobs"); code != http.StatusOK {
		t.Fatalf("GET /v1/jobs = %d, want 200", code)
	}
	if code, _ := get(t, srv.URL+"/v1/jobs/j-999999"); code != http.StatusNotFound {
		t.Fatalf("GET /v1/jobs/{unknown} = %d, want 404", code)
	}

	_, page := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		`mupod_http_requests_total{route="/healthz",method="GET",code="200"} 2`,
		`mupod_http_requests_total{route="/v1/jobs",method="GET",code="200"} 1`,
		`mupod_http_requests_total{route="/v1/jobs/{id}",method="GET",code="404"} 1`,
		`mupod_http_request_duration_seconds_bucket{route="/healthz",le="+Inf"} 2`,
		`mupod_http_request_duration_seconds_count{route="/healthz"} 2`,
		"mupod_http_in_flight 1", // the /metrics request itself is in flight
		"mupod_go_goroutines",
		"mupod_go_heap_bytes",
		"mupod_go_gc_pause_seconds",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}

	if h := m.Metrics().HTTPDuration("/healthz"); h == nil || h.Count() != 2 {
		t.Errorf("HTTPDuration(/healthz) count = %v, want 2", h)
	}
	if g := m.Metrics().httpInFlight.Value(); g != 0 {
		t.Errorf("in-flight gauge = %v after all requests finished, want 0", g)
	}
}

// TestReadyzTransitions covers the three unready causes: a saturated
// queue, an open profile breaker, and draining — each with its reason in
// the 503 body — plus liveness staying 200 throughout.
func TestReadyzTransitions(t *testing.T) {
	m := newTestManager(t, Config{
		Workers: 1, QueueDepth: 1,
		Resolver:         blockingResolver,
		BreakerThreshold: 1, BreakerCooldown: time.Hour,
	})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	if code, body := get(t, srv.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, `"ready"`) {
		t.Fatalf("fresh /readyz = %d %q, want 200 ready", code, body)
	}

	// Saturate: one job pinned running, one waiting fills QueueDepth=1.
	j1, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitStateReached(t, j1, StateRunning)
	j2, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "queue saturated") {
		t.Fatalf("saturated /readyz = %d %q, want 503 with queue reason", code, body)
	}
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("liveness flapped with readiness: /healthz = %d, want 200", code)
	}
	if _, err := m.Cancel(j2.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(j1.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateCancelled)
	waitState(t, j2, StateCancelled)

	// Trip the breaker: threshold 1, so a single recorded failure opens.
	m.breaker.Record(context.Background(), errors.New("profile backend down"))
	code, body = get(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "breaker open") {
		t.Fatalf("breaker-open /readyz = %d %q, want 503 with breaker reason", code, body)
	}
	m.breaker.Record(context.Background(), nil) // close it again

	// Drain: readiness goes 503 "draining", liveness stays 200.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining /readyz = %d %q, want 503 with draining reason", code, body)
	}
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200 (liveness is not readiness)", code)
	}
}

// waitStateReached polls until the job reports the (non-terminal) state.
func waitStateReached(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (state %s)", j.ID(), want, j.State())
}

// TestJobTimeline checks the stage-by-stage timeline of a completed job:
// lifecycle and pipeline events in order, monotone timestamps,
// non-negative inter-event durations, and the same view over HTTP.
func TestJobTimeline(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	j, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)

	tl := j.Timeline()
	want := []string{"queued", "running", "resolve", "profile", "search", "solve", "done"}
	if len(tl) != len(want) {
		t.Fatalf("timeline = %+v, want events %v", tl, want)
	}
	for i, e := range tl {
		if e.Event != want[i] {
			t.Errorf("timeline[%d].Event = %q, want %q", i, e.Event, want[i])
		}
		if e.SinceMS < 0 {
			t.Errorf("timeline[%d].SinceMS = %g, want >= 0", i, e.SinceMS)
		}
		if i > 0 && e.At.Before(tl[i-1].At) {
			t.Errorf("timeline[%d] at %v precedes timeline[%d] at %v", i, e.At, i-1, tl[i-1].At)
		}
	}

	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	_, body := get(t, srv.URL+"/v1/jobs/"+j.ID())
	if !strings.Contains(body, `"timeline"`) || !strings.Contains(body, `"solve"`) {
		t.Errorf("GET /v1/jobs/{id} body has no timeline: %s", body)
	}
}

// TestJobTimelinePareto: a Pareto job's timeline swaps solve for the
// pareto stage.
func TestJobTimelinePareto(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	req := tinyRequest()
	req.Pareto = &ParetoSpec{}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)

	var events []string
	for _, e := range j.Timeline() {
		events = append(events, e.Event)
	}
	want := []string{"queued", "running", "resolve", "profile", "search", "pareto", "done"}
	if !slicesEqual(events, want) {
		t.Fatalf("pareto timeline = %v, want %v", events, want)
	}
}

// TestTimelineSurvivesRestart: the timeline — stage events included —
// must come back after a shutdown/restart cycle over the same DataDir,
// whether it rides the journal or the compacted snapshot.
func TestTimelineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	a := newTestManager(t, Config{Workers: 1, DataDir: dir, NoFsync: true})
	j, err := a.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	before := j.Timeline()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	for restart := 1; restart <= 2; restart++ {
		// Restart 1 replays the journal; restart 2 replays the snapshot
		// that restart 1's startup compaction wrote.
		b := newTestManager(t, Config{Workers: 1, DataDir: dir, NoFsync: true})
		got, err := b.Get(j.ID())
		if err != nil {
			t.Fatal(err)
		}
		after := got.Timeline()
		if len(after) != len(before) {
			t.Fatalf("restart %d: timeline went from %d to %d entries: %+v", restart, len(before), len(after), after)
		}
		for i := range before {
			if after[i].Event != before[i].Event || !after[i].At.Equal(before[i].At) {
				t.Fatalf("restart %d: timeline[%d] = %+v, want %+v", restart, i, after[i], before[i])
			}
		}
		if err := b.Shutdown(ctx); err != nil && !strings.Contains(err.Error(), "already") {
			t.Fatal(err)
		}
	}
}

// TestStatusRecorderDefaults: a handler that writes without WriteHeader
// must be counted as 200, and an explicit code must stick.
func TestStatusRecorderDefaults(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.metrics.registerHTTP([]string{"/implicit", "/explicit"})
	implicit := m.instrument("/implicit", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	explicit := m.instrument("/explicit", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	implicit(httptest.NewRecorder(), httptest.NewRequest("GET", "/implicit", nil))
	explicit(httptest.NewRecorder(), httptest.NewRequest("GET", "/explicit", nil))

	var sb strings.Builder
	m.WriteMetrics(&sb)
	page := sb.String()
	for _, want := range []string{
		`mupod_http_requests_total{route="/implicit",method="GET",code="200"} 1`,
		`mupod_http_requests_total{route="/explicit",method="GET",code="418"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}
