package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"mupod/internal/pareto"
	"mupod/internal/profile"
	"mupod/internal/search"
)

// ParetoSpec asks a job for a Pareto front instead of a single-objective
// allocation: POST /pareto (or POST /v1/jobs with a "pareto" object)
// runs the α-sweep — and, with NSGA2 set, the warm-started genetic
// search on top — after the σ search, and returns the non-dominated
// (input-bits, MAC-energy) frontier as the job result.
type ParetoSpec struct {
	// Alphas lists custom sweep blend weights in [0,1] (default the
	// 0..1 step-0.1 grid).
	Alphas []float64 `json:"alphas,omitempty"`
	// NSGA2 enables the genetic search on top of the sweep warm start.
	NSGA2 bool `json:"nsga2,omitempty"`
	// Generations and PopSize tune the NSGA-II run (defaults 20 / 32).
	Generations int `json:"generations,omitempty"`
	PopSize     int `json:"pop_size,omitempty"`
	// Seed seeds the deterministic search RNG.
	Seed uint64 `json:"seed,omitempty"`
	// WeightBits is the uniform weight width of the energy model
	// (default 8).
	WeightBits int `json:"weight_bits,omitempty"`
}

// Validate checks the spec's static constraints.
func (s *ParetoSpec) Validate() error {
	for _, a := range s.Alphas {
		if a < 0 || a > 1 {
			return fmt.Errorf("pareto alpha %g outside [0,1]", a)
		}
	}
	if s.Generations < 0 || s.PopSize < 0 || s.WeightBits < 0 {
		return fmt.Errorf("pareto generations/pop_size/weight_bits must be non-negative")
	}
	return nil
}

// ParetoPoint is one operating point of a served front.
type ParetoPoint struct {
	// Alpha is the sweep blend weight that produced the point, or -1
	// for points discovered by the genetic search.
	Alpha        float64 `json:"alpha"`
	InputBits    int64   `json:"input_bits"`
	MACEnergyPJ  float64 `json:"mac_energy_pj"`
	EffInputBits float64 `json:"effective_input_bits"`
	EffMACBits   float64 `json:"effective_mac_bits"`
	Bits         []int   `json:"bits"`
}

// ParetoResult is the front payload attached to a finished pareto job.
type ParetoResult struct {
	// Front is the non-dominated frontier, ascending input bits.
	Front []ParetoPoint `json:"front"`
	// SweepFront is the non-dominated filter of the α-sweep alone
	// (equal to Front for sweep-only jobs).
	SweepFront []ParetoPoint `json:"sweep_front"`
	// RefPoint is the common hypervolume reference for both fronts.
	RefPoint [2]float64 `json:"ref_point"`
	// Hypervolume and SweepHypervolume are measured at RefPoint;
	// Hypervolume >= SweepHypervolume always (the genetic archive
	// contains every sweep point).
	Hypervolume      float64 `json:"hypervolume"`
	SweepHypervolume float64 `json:"sweep_hypervolume"`
	// Evaluations counts candidate allocations evaluated.
	Evaluations int `json:"evaluations"`
	// Generations is the completed NSGA-II generation count (0 for
	// sweep-only jobs).
	Generations int `json:"generations"`
	// FrontCacheHit reports whether the front came from the
	// content-addressed front cache.
	FrontCacheHit bool `json:"front_cache_hit"`
}

func toParetoPoints(pts []pareto.Point) []ParetoPoint {
	out := make([]ParetoPoint, len(pts))
	for i, p := range pts {
		out[i] = ParetoPoint{
			Alpha:        p.Alpha,
			InputBits:    p.InputBits,
			MACEnergyPJ:  p.MACEnergy,
			EffInputBits: p.EffInputBits,
			EffMACBits:   p.EffMACBits,
		}
		if p.Allocation != nil {
			out[i].Bits = p.Allocation.Bits()
		}
	}
	return out
}

// FrontKey content-addresses a Pareto front: the profile key already
// pins the network, weights, profiling inputs and profile config; the
// search options pin σ_YŁ (the search is deterministic); the spec pins
// the front parameters. Worker counts are excluded — results are
// bit-identical at any parallelism, so they must not split the cache.
func FrontKey(profileKey string, sopts search.Options, spec ParetoSpec, deltaFloor float64) string {
	sopts.Workers = 0
	sopts.Kernel = sopts.Kernel.ResultClass()
	h := sha256.New()
	io.WriteString(h, "pareto-front-v1\n")
	io.WriteString(h, profileKey)
	fmt.Fprintf(h, "\n%#v\n%#v\n%g", sopts, spec, deltaFloor)
	return hex.EncodeToString(h.Sum(nil))
}

// frontEntry is one (possibly still computing) cached front, with the
// same single-flight semantics as the profile cache: ready closes when
// res/err are final, failed entries are removed before ready closes so
// a waiter retries as the new leader.
type frontEntry struct {
	ready chan struct{}
	res   *ParetoResult
	err   error
	elem  *list.Element
}

// frontCache is the content-addressed LRU of computed Pareto fronts.
// Fronts are small (a few dozen points), so it is bounded by count
// only.
type frontCache struct {
	mu      sync.Mutex
	entries map[string]*frontEntry
	lru     *list.List // of string keys, front = most recent
	cap     int
}

func newFrontCache(capacity int) *frontCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &frontCache{
		entries: make(map[string]*frontEntry),
		lru:     list.New(),
		cap:     capacity,
	}
}

// Len returns the number of completed cached fronts.
func (c *frontCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// getOrCompute returns the cached front for key or runs compute to fill
// it, sharing one computation across concurrent submissions.
func (c *frontCache) getOrCompute(ctx context.Context, key string, compute func(context.Context) (*ParetoResult, error)) (res *ParetoResult, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if e.err != nil {
				continue // leader failed; retry as (or behind) a new leader
			}
			return e.res, true, nil
		}
		e := &frontEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()

		e.res, e.err = compute(ctx)
		c.mu.Lock()
		if e.err != nil {
			delete(c.entries, key)
		} else {
			e.elem = c.lru.PushFront(key)
			for c.lru.Len() > c.cap {
				back := c.lru.Back()
				k := back.Value.(string)
				c.lru.Remove(back)
				if old := c.entries[k]; old != nil {
					old.elem = nil
				}
				delete(c.entries, k)
			}
		}
		c.mu.Unlock()
		close(e.ready)
		return e.res, false, e.err
	}
}

// computePareto runs the front computation for one job: the α-sweep
// always, the NSGA-II search on top when the spec asks for it. The
// result is independent of workers (the engine's determinism contract),
// which is what makes the front cache sound.
func computePareto(ctx context.Context, prof *profile.Profile, sigmaYL float64, spec ParetoSpec, deltaFloor float64, workers int) (*ParetoResult, error) {
	if spec.NSGA2 {
		res, err := pareto.RunNSGA2(ctx, prof, sigmaYL, pareto.NSGA2Config{
			Generations: spec.Generations,
			PopSize:     spec.PopSize,
			Seed:        spec.Seed,
			Workers:     workers,
			Alphas:      spec.Alphas,
			WeightBits:  spec.WeightBits,
			DeltaFloor:  deltaFloor,
		})
		if err != nil {
			return nil, err
		}
		return &ParetoResult{
			Front:            toParetoPoints(res.Front),
			SweepFront:       toParetoPoints(pareto.NonDominated(res.Sweep)),
			RefPoint:         res.RefPoint,
			Hypervolume:      res.Hypervolume,
			SweepHypervolume: res.SweepHypervolume,
			Evaluations:      res.Evals,
			Generations:      res.Generations,
		}, nil
	}
	pts, err := pareto.SweepContext(ctx, prof, sigmaYL, pareto.Config{
		Alphas: spec.Alphas, WeightBits: spec.WeightBits, DeltaFloor: deltaFloor,
	})
	if err != nil {
		return nil, err
	}
	front := pareto.NonDominated(pts)
	ref := pareto.RefPoint(pts)
	hv := pareto.Hypervolume(pts, ref)
	fp := toParetoPoints(front)
	return &ParetoResult{
		Front:            fp,
		SweepFront:       fp,
		RefPoint:         ref,
		Hypervolume:      hv,
		SweepHypervolume: hv,
		Evaluations:      len(pts),
	}, nil
}
