package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mupod/internal/dataset"
	"mupod/internal/fault"
	"mupod/internal/nn"
)

// paretoRequest is tinyRequest turned into an NSGA-II front job small
// enough to finish in well under a second.
func paretoRequest() JobRequest {
	req := tinyRequest()
	req.Pareto = &ParetoSpec{NSGA2: true, Generations: 3, PopSize: 8, Seed: 7}
	return req
}

// TestParetoJobLifecycle: submit → poll → front. The NSGA-II front must
// be a strict staircase whose hypervolume weakly dominates the sweep's.
func TestParetoJobLifecycle(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	j, err := m.Submit(paretoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)

	res := j.Result()
	if res == nil || res.Pareto == nil {
		t.Fatal("done pareto job has no pareto result")
	}
	p := res.Pareto
	if res.Objective != "pareto" {
		t.Errorf("objective = %q, want pareto", res.Objective)
	}
	if len(p.Front) == 0 || len(p.SweepFront) == 0 {
		t.Fatalf("empty front: %d front, %d sweep points", len(p.Front), len(p.SweepFront))
	}
	for i, pt := range p.Front {
		if len(pt.Bits) == 0 {
			t.Fatalf("front point %d has no bit allocation", i)
		}
		if i > 0 {
			prev := p.Front[i-1]
			if pt.InputBits <= prev.InputBits || pt.MACEnergyPJ >= prev.MACEnergyPJ {
				t.Fatalf("front is not a strict staircase at %d: (%d,%g) after (%d,%g)",
					i, pt.InputBits, pt.MACEnergyPJ, prev.InputBits, prev.MACEnergyPJ)
			}
		}
	}
	if p.Hypervolume < p.SweepHypervolume*(1-1e-9) {
		t.Errorf("hypervolume %g < sweep hypervolume %g", p.Hypervolume, p.SweepHypervolume)
	}
	if p.Generations != 3 {
		t.Errorf("generations = %d, want 3", p.Generations)
	}
	if p.Evaluations <= 0 {
		t.Errorf("evaluations = %d, want > 0", p.Evaluations)
	}
	if p.FrontCacheHit {
		t.Error("first submission cannot hit the front cache")
	}
	if res.ParetoMS < 0 {
		t.Errorf("pareto_ms = %g, want >= 0", res.ParetoMS)
	}
	if res.SolveMS != 0 || len(res.Layers) != 0 {
		t.Errorf("pareto job ran the solve stage: solve_ms=%g layers=%d", res.SolveMS, len(res.Layers))
	}
}

// TestParetoFrontCacheHit: an identical second submission is served from
// the content-addressed front cache.
func TestParetoFrontCacheHit(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	first, err := m.Submit(paretoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateDone)
	second, err := m.Submit(paretoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, second, StateDone)

	a, b := first.Result().Pareto, second.Result().Pareto
	if a.FrontCacheHit || !b.FrontCacheHit {
		t.Errorf("front_cache_hit = (%t, %t), want (false, true)", a.FrontCacheHit, b.FrontCacheHit)
	}
	if got := m.Metrics().FrontCacheHits(); got != 1 {
		t.Errorf("mupod_front_cache_hits_total = %d, want 1", got)
	}
	if got := m.Metrics().FrontCacheMisses(); got != 1 {
		t.Errorf("mupod_front_cache_misses_total = %d, want 1", got)
	}
	if len(a.Front) != len(b.Front) {
		t.Fatalf("cached front has %d points, original %d", len(b.Front), len(a.Front))
	}
	for i := range a.Front {
		if a.Front[i].InputBits != b.Front[i].InputBits ||
			a.Front[i].MACEnergyPJ != b.Front[i].MACEnergyPJ {
			t.Fatalf("cached front diverges at point %d: %+v vs %+v", i, a.Front[i], b.Front[i])
		}
	}
}

// TestParetoHTTPEndpoint: POST /pareto with no "pareto" key defaults to
// the α-sweep spec; the front JSON comes back through GET /v1/jobs/{id}.
func TestParetoHTTPEndpoint(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	body, err := json.Marshal(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/pareto", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /pareto = %d, want 202", resp.StatusCode)
	}
	var accepted JobView
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}

	var view JobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.State != StateDone {
		t.Fatalf("state = %s, want done (err=%q)", view.State, view.Error)
	}
	p := view.Result.Pareto
	if p == nil || len(p.Front) == 0 {
		t.Fatal("served result has no front")
	}
	// Default spec is the sweep alone: front == sweep front.
	if p.Generations != 0 || p.Hypervolume != p.SweepHypervolume {
		t.Errorf("default /pareto spec ran NSGA-II: gens=%d hv=%g sweep=%g",
			p.Generations, p.Hypervolume, p.SweepHypervolume)
	}
	if len(p.Front) != len(p.SweepFront) {
		t.Errorf("sweep-only front sizes differ: %d vs %d", len(p.Front), len(p.SweepFront))
	}
}

// TestParetoCancelMidGeneration: a sleep failpoint parks the NSGA-II
// loop inside a generation; cancelling the job must unwind it promptly.
func TestParetoCancelMidGeneration(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable("pareto.generation", "sleep(30s)"); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Workers: 1})
	j, err := m.Submit(paretoRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the run to reach the parked generation, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for fault.Triggered("pareto.generation") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the pareto stage (state %s)", j.State())
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled)
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v; the generation sleep was not interrupted", d)
	}
	if j.Result() != nil {
		t.Error("cancelled job has a result")
	}
}

// TestParetoGenerationFailpointRetries: a transient failure inside the
// NSGA-II loop re-queues the pareto job until it succeeds.
func TestParetoGenerationFailpointRetries(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Enable("pareto.generation", "2*error(transient:chaos)"); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{
		Workers: 1, MaxAttempts: 3,
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond,
		BreakerThreshold: -1, // isolate retry behavior from the breaker
	})
	j, err := m.Submit(paretoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	if got := j.Attempt(); got != 3 {
		t.Errorf("attempt = %d, want 3 (two transient failures, then success)", got)
	}
	if got := m.Metrics().Retries(); got != 2 {
		t.Errorf("mupod_job_retries_total = %d, want 2", got)
	}
	if got := fault.Triggered("pareto.generation"); got != 2 {
		t.Errorf("failpoint fired %d times, want 2", got)
	}
	res := j.Result()
	if res == nil || res.Pareto == nil || len(res.Pareto.Front) == 0 {
		t.Fatal("retried pareto job finished without a front")
	}
}

// TestParetoCrashRecoveryReplay: a pareto job interrupted by a crash is
// replayed from the journal with its spec intact — the recovered run
// still produces a front, proving ParetoSpec round-trips the WAL.
func TestParetoCrashRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	stall := func(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, nil, ctx.Err()
	}
	a, err := New(Config{Workers: 1, DataDir: dir, NoFsync: true, Logf: t.Logf, Resolver: stall})
	if err != nil {
		t.Fatal(err)
	}
	j, err := a.Submit(paretoRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	a.Crash()

	b := newTestManager(t, Config{Workers: 1, DataDir: dir, NoFsync: true})
	got, err := b.Get(j.ID())
	if err != nil {
		t.Fatalf("pareto job lost across the crash: %v", err)
	}
	waitState(t, got, StateDone)
	res := got.Result()
	if res == nil || res.Pareto == nil {
		t.Fatal("replayed job lost its pareto spec in the journal")
	}
	if len(res.Pareto.Front) == 0 || res.Pareto.Generations != 3 {
		t.Fatalf("replayed front malformed: %d points, %d generations",
			len(res.Pareto.Front), res.Pareto.Generations)
	}
	if got.Attempt() != 2 {
		t.Errorf("attempt = %d after recovery, want 2", got.Attempt())
	}
}
