package serve

import (
	"context"
	"fmt"
	"strings"

	"mupod/internal/dataset"
	"mupod/internal/netdesc"
	"mupod/internal/nn"
	"mupod/internal/train"
	"mupod/internal/zoo"
)

// DefaultResolver resolves requests against the model zoo (Model) or by
// parsing and training an inline netdesc description (Network). Zoo
// loads are cached process-wide by internal/zoo, so only the first
// request per architecture pays the training cost.
func DefaultResolver(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
	if req.Model != "" {
		arch := zoo.Arch(strings.ToLower(req.Model))
		if _, ok := zoo.AnalyzableLayers[arch]; !ok {
			return nil, nil, fmt.Errorf("unknown model %q", req.Model)
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		net, err := zoo.Load(arch)
		if err != nil {
			return nil, nil, fmt.Errorf("loading %s: %w", arch, err)
		}
		_, test := zoo.Data(arch)
		return net, test, nil
	}

	net, err := netdesc.Parse(strings.NewReader(req.Network))
	if err != nil {
		return nil, nil, err
	}
	if net.InputShape[0] != 3 {
		return nil, nil, fmt.Errorf("netdesc networks must take 3-channel input (got %v)", net.InputShape)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	steps := req.TrainSteps
	if steps <= 0 {
		steps = 400
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	tr, test := dataset.Generate(dataset.Config{
		H: net.InputShape[1], W: net.InputShape[2],
		Train: 600, Test: 400, Seed: seed + 97,
	})
	train.Run(net, tr, train.Config{
		Optimizer: train.Adam, LR: 0.003, Steps: steps, BatchSize: 8, Seed: seed,
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return net, test, nil
}
