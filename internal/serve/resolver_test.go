package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mupod/internal/dataset"
	"mupod/internal/nn"
	"mupod/internal/profile"
)

func TestDefaultResolverUnknownModel(t *testing.T) {
	_, _, err := DefaultResolver(context.Background(), &JobRequest{Model: "no-such-model"})
	if err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("err = %v, want unknown-model", err)
	}
}

func TestDefaultResolverBadNetdesc(t *testing.T) {
	_, _, err := DefaultResolver(context.Background(), &JobRequest{Network: "this is not a netdesc file"})
	if err == nil {
		t.Fatal("garbage netdesc resolved without error")
	}
}

func TestDefaultResolverRejectsNonRGBInput(t *testing.T) {
	desc := "network a input=2x8x8 classes=10 seed=3\n" +
		"conv c in=input inc=2 outc=4 k=3 pad=1\n" +
		"relu r in=c\n" +
		"gap g in=r\n"
	_, _, err := DefaultResolver(context.Background(), &JobRequest{Network: desc})
	if err == nil || !strings.Contains(err.Error(), "3-channel") {
		t.Fatalf("err = %v, want 3-channel input rejection", err)
	}
}

func TestDefaultResolverCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Zoo path: the ctx check fires before the (expensive) zoo.Load.
	if _, _, err := DefaultResolver(ctx, &JobRequest{Model: "alexnet"}); !errors.Is(err, context.Canceled) {
		t.Errorf("zoo path err = %v, want context.Canceled", err)
	}
	// Netdesc path: the ctx check fires before dataset generation and
	// training.
	desc := "network a input=3x8x8 classes=10 seed=3\n" +
		"conv c in=input inc=3 outc=4 k=3 pad=1\n" +
		"relu r in=c\n" +
		"gap g in=r\n"
	if _, _, err := DefaultResolver(ctx, &JobRequest{Network: desc}); !errors.Is(err, context.Canceled) {
		t.Errorf("netdesc path err = %v, want context.Canceled", err)
	}
}

// TestResolverFailureFailsJobBeforeCache: an upstream resolver failure
// fails the job during the resolve stage — the profile cache is never
// consulted, so neither hit nor miss is counted.
func TestResolverFailureFailsJobBeforeCache(t *testing.T) {
	boom := errors.New("upstream model store down")
	m := newTestManager(t, Config{
		Workers: 1, MaxAttempts: 1,
		Resolver: func(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
			return nil, nil, boom
		},
	})
	j, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if !strings.Contains(j.Err(), "resolve: upstream model store down") {
		t.Errorf("err = %q, want the wrapped resolver failure", j.Err())
	}
	if hits, misses := m.Metrics().CacheHits(), m.Metrics().CacheMisses(); hits != 0 || misses != 0 {
		t.Errorf("cache counters = %d hits / %d misses after a resolve failure, want 0/0", hits, misses)
	}
	if m.CacheLen() != 0 {
		t.Errorf("cache holds %d entries after a resolve failure", m.CacheLen())
	}
}

// TestResolverCancellationMidResolve: cancelling a job parked inside the
// resolver transitions it to cancelled, not failed.
func TestResolverCancellationMidResolve(t *testing.T) {
	entered := make(chan struct{}, 1)
	m := newTestManager(t, Config{
		Workers: 1,
		Resolver: func(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
			entered <- struct{}{}
			<-ctx.Done()
			return nil, nil, ctx.Err()
		},
	})
	j, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the worker is inside the resolver now
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled)
}

// TestProfileCacheSingleflightFailure: concurrent callers coalescing on
// one failing compute all observe the error, nothing is cached, and a
// later success computes exactly once.
func TestProfileCacheSingleflightFailure(t *testing.T) {
	c := NewProfileCache(4)
	boom := errors.New("profiler exploded")
	var fails atomic.Int32
	const callers = 8
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := c.GetOrCompute(context.Background(), "k", func(ctx context.Context) (*profile.Profile, error) {
				fails.Add(1)
				time.Sleep(2 * time.Millisecond) // let waiters pile onto the leader
				return nil, boom
			})
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d err = %v, want the compute failure", i, err)
		}
	}
	if got := fails.Load(); got < 1 || got > callers {
		t.Errorf("failing compute ran %d times, want between 1 and %d", got, callers)
	}
	if c.Len() != 0 {
		t.Errorf("failed compute left %d cached entries", c.Len())
	}

	// The failure must not poison the key: the next caller recomputes.
	want := &profile.Profile{}
	var succ atomic.Int32
	got, hit, err := c.GetOrCompute(context.Background(), "k", func(ctx context.Context) (*profile.Profile, error) {
		succ.Add(1)
		return want, nil
	})
	if err != nil || hit || got != want {
		t.Fatalf("post-failure compute = (%v, hit=%v, err=%v)", got, hit, err)
	}
	if succ.Load() != 1 || c.Len() != 1 {
		t.Errorf("successful compute ran %d times, cache holds %d entries; want 1 and 1", succ.Load(), c.Len())
	}
}
