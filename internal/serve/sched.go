package serve

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultTenant is the tenant a request without one is accounted to.
const DefaultTenant = "default"

// ErrTenantQuota rejects a submission whose tenant already has its full
// per-tenant quota of jobs queued. Like ErrQueueFull it maps to a 429:
// the pool as a whole may have room, but this tenant must back off.
var ErrTenantQuota = errors.New("serve: tenant queue quota exceeded")

// maxTenantName bounds tenant identifiers; they become metric label
// values, so they stay short and printable.
const maxTenantName = 64

// ValidTenant checks a tenant identifier: empty (→ DefaultTenant) or up
// to 64 characters drawn from [A-Za-z0-9._-].
func ValidTenant(name string) error {
	if len(name) > maxTenantName {
		return fmt.Errorf("serve: tenant name longer than %d bytes", maxTenantName)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("serve: tenant name %q has invalid byte %q (want [A-Za-z0-9._-])", name, c)
		}
	}
	return nil
}

// ParseTenantWeights parses a "name:weight,name:weight" list (the
// -tenant-weights flag). Weights are positive integers; a bare name
// means weight 1. Unlisted tenants default to weight 1 at runtime.
func ParseTenantWeights(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, ":")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(strings.TrimSpace(wstr)); err != nil || w <= 0 {
				return nil, fmt.Errorf("serve: tenant weight %q must be a positive integer", part)
			}
		}
		name = strings.TrimSpace(name)
		if err := ValidTenant(name); err != nil {
			return nil, err
		}
		if name == "" {
			name = DefaultTenant
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("serve: tenant %q listed twice", name)
		}
		out[name] = w
	}
	return out, nil
}

// tenantQueue is one tenant's FIFO sub-queue plus its deficit-round-
// robin bookkeeping. queued counts admission occupancy — reservations
// taken under the manager lock that have not yet materialized as an
// enqueued job — so the bounds cannot be raced past between the
// admission decision and the journaled enqueue.
type tenantQueue struct {
	name    string
	jobs    []*Job
	queued  int // reserved + enqueued (admission occupancy)
	deficit int
	inTurn  bool
}

// scheduler replaces the old single FIFO channel: per-tenant bounded
// sub-queues drained by deficit round robin. Admission invariants:
//
//	Σ queued  <  depth     (the global QueueDepth bound — retries and
//	                        batch items count like everything else)
//	queued(t) <  quota     (per-tenant, when quota > 0)
//
// Recovery bypasses both (enqueueForce): a replayed backlog must fit
// without blocking startup, and drains back under the bounds naturally
// because new admissions keep being checked against them.
//
// DRR semantics: each backlogged tenant receives weight(t) credits when
// its turn begins and dequeues one job per credit; an emptied sub-queue
// forfeits leftover credit (no banking while idle). With every weight 1
// this degrades to plain round robin; with a single tenant, to FIFO.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	depth   int
	quota   int
	weights map[string]int
	tenants map[string]*tenantQueue
	ring    []*tenantQueue // tenants with jobs enqueued, in turn order
	cur     int            // ring index DRR is currently serving
	queued  int            // Σ tenantQueue.queued (admission occupancy)
	avail   int            // jobs actually enqueued and poppable
	closed  bool
}

func newScheduler(depth, quota int, weights map[string]int) *scheduler {
	s := &scheduler{
		depth:   depth,
		quota:   quota,
		weights: weights,
		tenants: make(map[string]*tenantQueue),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *scheduler) weightFor(name string) int {
	if w := s.weights[name]; w > 0 {
		return w
	}
	return 1
}

// tq returns (creating if needed) the named tenant's sub-queue. Caller
// holds s.mu.
func (s *scheduler) tq(name string) *tenantQueue {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantQueue{name: name}
		s.tenants[name] = t
	}
	return t
}

// reserve takes one admission slot for the tenant, enforcing the global
// depth and the per-tenant quota. The matching enqueue (or unreserve)
// must follow; callers serialize reserve→enqueue under the manager
// lock, so the check-then-act pair cannot over-admit.
func (s *scheduler) reserve(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued >= s.depth {
		return ErrQueueFull
	}
	t := s.tq(name)
	if s.quota > 0 && t.queued >= s.quota {
		return ErrTenantQuota
	}
	t.queued++
	s.queued++
	return nil
}

// unreserve returns an admission slot taken by reserve when the job was
// finalized before it could be enqueued.
func (s *scheduler) unreserve(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tenants[name]; t != nil && t.queued > 0 {
		t.queued--
		s.queued--
	}
}

// enqueue appends a job whose slot was already reserved and wakes one
// worker.
func (s *scheduler) enqueue(name string, j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.push(s.tq(name), j)
}

// enqueueForce admits a job past the bounds — crash recovery only.
func (s *scheduler) enqueueForce(name string, j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tq(name)
	t.queued++
	s.queued++
	s.push(t, j)
}

// push appends to the sub-queue, joining the DRR ring if the tenant was
// idle. Caller holds s.mu and has accounted the admission slot.
func (s *scheduler) push(t *tenantQueue, j *Job) {
	if len(t.jobs) == 0 {
		s.ring = append(s.ring, t)
	}
	t.jobs = append(t.jobs, j)
	s.avail++
	s.cond.Signal()
}

// next blocks until a job is available (returning it per DRR order) or
// the scheduler is closed and drained, mirroring a closed channel: a
// worker keeps receiving queued jobs after close until none remain.
func (s *scheduler) next() (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.avail == 0 {
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
	return s.pop(), true
}

// pop dequeues per deficit round robin. Caller holds s.mu; s.avail > 0.
func (s *scheduler) pop() *Job {
	for {
		if s.cur >= len(s.ring) {
			s.cur = 0
		}
		t := s.ring[s.cur]
		if len(t.jobs) == 0 {
			s.dropRing(s.cur)
			continue
		}
		if !t.inTurn {
			t.inTurn = true
			t.deficit += s.weightFor(t.name)
		}
		if t.deficit < 1 {
			// Turn spent: pass to the next backlogged tenant.
			t.inTurn = false
			s.cur++
			continue
		}
		t.deficit--
		j := t.jobs[0]
		t.jobs[0] = nil
		t.jobs = t.jobs[1:]
		t.queued--
		s.queued--
		s.avail--
		if len(t.jobs) == 0 {
			t.jobs = nil
			t.inTurn, t.deficit = false, 0
			s.dropRing(s.cur)
		}
		return j
	}
}

// dropRing removes ring[i], keeping cur pointed at the same logical
// successor. Caller holds s.mu.
func (s *scheduler) dropRing(i int) {
	s.ring = append(s.ring[:i], s.ring[i+1:]...)
	if s.cur > i {
		s.cur--
	}
	if s.cur >= len(s.ring) {
		s.cur = 0
	}
}

// stealAll empties every sub-queue and returns the stolen jobs in
// tenant-name order (FIFO within a tenant), releasing their admission
// slots. The cluster drain path uses it to hand still-queued work to
// peers; anything that cannot be handed off is re-admitted with
// enqueueForce.
func (s *scheduler) stealAll() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for name, t := range s.tenants {
		if len(t.jobs) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []*Job
	for _, name := range names {
		t := s.tenants[name]
		out = append(out, t.jobs...)
		t.queued -= len(t.jobs)
		s.queued -= len(t.jobs)
		s.avail -= len(t.jobs)
		t.jobs = nil
		t.inTurn, t.deficit = false, 0
	}
	// Rebuild the ring: every stolen tenant left it.
	s.ring = s.ring[:0]
	s.cur = 0
	return out
}

// close stops future blocking in next; queued jobs still drain.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Len returns the admission occupancy: queued jobs plus reservations
// mid-flight between the admission check and their enqueue.
func (s *scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// TenantDepth returns one tenant's admission occupancy.
func (s *scheduler) TenantDepth(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tenants[name]; t != nil {
		return t.queued
	}
	return 0
}

// TenantDepths snapshots every known tenant's occupancy, sorted by name
// for deterministic iteration.
func (s *scheduler) TenantDepths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.tenants))
	for name, t := range s.tenants {
		out[name] = t.queued
	}
	return out
}

// TenantNames lists every tenant the scheduler has seen, sorted.
func (s *scheduler) TenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
