package serve

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// schedJob makes a placeholder job for scheduler-only tests.
func schedJob(id string) *Job {
	return &Job{id: id}
}

func TestParseTenantWeights(t *testing.T) {
	cases := []struct {
		in      string
		want    map[string]int
		wantErr bool
	}{
		{"", nil, false},
		{"   ", nil, false},
		{"a:2,b:1", map[string]int{"a": 2, "b": 1}, false},
		{" a : 2 , b ", map[string]int{"a": 2, "b": 1}, false},
		{"team-x:3", map[string]int{"team-x": 3}, false},
		{":4", map[string]int{DefaultTenant: 4}, false},
		{"a:0", nil, true},
		{"a:-1", nil, true},
		{"a:x", nil, true},
		{"a:1,a:2", nil, true},
		{"bad name:1", nil, true},
	}
	for _, c := range cases {
		got, err := ParseTenantWeights(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseTenantWeights(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTenantWeights(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseTenantWeights(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"", "a", "team-x", "Big.Corp_1", "x-y.z"} {
		if err := ValidTenant(ok); err != nil {
			t.Errorf("ValidTenant(%q): %v", ok, err)
		}
	}
	long := make([]byte, maxTenantName+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"a b", "a/b", "a\n", "ü", string(long)} {
		if err := ValidTenant(bad); err == nil {
			t.Errorf("ValidTenant(%q) accepted", bad)
		}
	}
}

// TestSchedulerDRROrder: weights 2:1 yield the exact a,a,b interleave —
// the deficit carries within a turn and resets when a queue drains.
func TestSchedulerDRROrder(t *testing.T) {
	s := newScheduler(100, 0, map[string]int{"a": 2, "b": 1})
	for i := 0; i < 6; i++ {
		s.enqueueForce("a", schedJob(fmt.Sprintf("a%d", i)))
	}
	for i := 0; i < 3; i++ {
		s.enqueueForce("b", schedJob(fmt.Sprintf("b%d", i)))
	}
	want := []string{"a0", "a1", "b0", "a2", "a3", "b1", "a4", "a5", "b2"}
	var got []string
	for range want {
		j, ok := s.next()
		if !ok {
			t.Fatal("scheduler closed early")
		}
		got = append(got, j.id)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DRR order = %v, want %v", got, want)
	}
	if s.Len() != 0 {
		t.Fatalf("drained scheduler Len = %d", s.Len())
	}
}

// TestSchedulerIdleTenantBanksNoCredit: a tenant whose queue drained
// re-enters with a fresh turn, not with banked deficit from idling.
func TestSchedulerIdleTenantBanksNoCredit(t *testing.T) {
	s := newScheduler(100, 0, map[string]int{"a": 5, "b": 1})
	s.enqueueForce("a", schedJob("a0"))
	if j, _ := s.next(); j.id != "a0" {
		t.Fatalf("popped %s, want a0", j.id)
	}
	// a's queue drained with deficit 4 left — which must be forfeited.
	for i := 0; i < 3; i++ {
		s.enqueueForce("b", schedJob(fmt.Sprintf("b%d", i)))
	}
	s.enqueueForce("a", schedJob("a1"))
	var got []string
	for i := 0; i < 4; i++ {
		j, _ := s.next()
		got = append(got, j.id)
	}
	// b joined the ring first this round; a's new turn grants 5 but its
	// single job drains it immediately.
	want := []string{"b0", "a1", "b1", "b2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// TestSchedulerSingleTenantFIFO: one tenant degrades to plain FIFO.
func TestSchedulerSingleTenantFIFO(t *testing.T) {
	s := newScheduler(10, 0, nil)
	for i := 0; i < 5; i++ {
		if err := s.reserve(DefaultTenant); err != nil {
			t.Fatal(err)
		}
		s.enqueue(DefaultTenant, schedJob(fmt.Sprintf("j%d", i)))
	}
	for i := 0; i < 5; i++ {
		j, ok := s.next()
		if !ok || j.id != fmt.Sprintf("j%d", i) {
			t.Fatalf("pop %d = %v (ok=%v)", i, j, ok)
		}
	}
}

// TestSchedulerBounds: the global depth sheds with ErrQueueFull, the
// per-tenant quota with ErrTenantQuota, and unreserve returns the slot.
func TestSchedulerBounds(t *testing.T) {
	s := newScheduler(3, 2, nil)
	if err := s.reserve("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.reserve("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.reserve("a"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third a reserve = %v, want ErrTenantQuota", err)
	}
	if err := s.reserve("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.reserve("b"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("fourth reserve = %v, want ErrQueueFull", err)
	}
	s.unreserve("a")
	if err := s.reserve("b"); err != nil {
		t.Fatalf("reserve after unreserve = %v", err)
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := s.TenantDepth("b"); got != 2 {
		t.Fatalf("TenantDepth(b) = %d, want 2", got)
	}
}

// TestSchedulerForceBypassesBounds: recovery enqueues above depth, and
// the excess occupancy blocks new reservations until it drains.
func TestSchedulerForceBypassesBounds(t *testing.T) {
	s := newScheduler(2, 0, nil)
	for i := 0; i < 5; i++ {
		s.enqueueForce("a", schedJob(fmt.Sprintf("r%d", i)))
	}
	if got := s.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	if err := s.reserve("a"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("reserve over recovered backlog = %v, want ErrQueueFull", err)
	}
	for i := 0; i < 4; i++ {
		s.next()
	}
	if err := s.reserve("a"); err != nil {
		t.Fatalf("reserve after drain = %v", err)
	}
}

// TestSchedulerCloseDrains: close mirrors a closed channel — queued
// jobs still pop, then next reports !ok; blocked waiters wake.
func TestSchedulerCloseDrains(t *testing.T) {
	s := newScheduler(10, 0, nil)
	s.enqueueForce("a", schedJob("a0"))
	s.enqueueForce("a", schedJob("a1"))
	s.close()
	for i := 0; i < 2; i++ {
		if j, ok := s.next(); !ok || j == nil {
			t.Fatalf("pop %d after close: ok=%v", i, ok)
		}
	}
	if _, ok := s.next(); ok {
		t.Fatal("next returned a job from a closed drained scheduler")
	}

	// A parked waiter wakes on close.
	s2 := newScheduler(10, 0, nil)
	woke := make(chan bool, 1)
	go func() {
		_, ok := s2.next()
		woke <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	s2.close()
	select {
	case ok := <-woke:
		if ok {
			t.Fatal("waiter got a job from an empty closed scheduler")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after close")
	}
}
