package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mupod/internal/dataset"
	"mupod/internal/nn"
	"mupod/internal/profile"
	"mupod/internal/search"
	"mupod/internal/testnet"
)

// testResolver serves the shared tiny trained network — jobs complete
// in well under a second.
func testResolver(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
	net, _, te := testnet.Trained()
	return net, te, nil
}

// blockingResolver parks until the job is cancelled — used to pin jobs
// in the running state.
func blockingResolver(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
	<-ctx.Done()
	return nil, nil, ctx.Err()
}

// tinyRequest keeps the pipeline cheap: few profiling points, a loose
// constraint, a coarse binary search.
func tinyRequest() JobRequest {
	return JobRequest{
		Model: "testnet", // resolved by testResolver, never the zoo
		Profile: profile.Config{
			Images: 8, Points: 5, Seed: 1,
		},
		Search: search.Options{
			RelDrop: 0.05, EvalImages: 64, Tol: 0.2, Seed: 2,
		},
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Resolver == nil {
		cfg.Resolver = testResolver
	}
	cfg.Logf = t.Logf
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx) //nolint:errcheck // double-shutdown in tests is fine
	})
	return m
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v (state %s)", j.ID(), err, j.State())
	}
	if got := j.State(); got != want {
		t.Fatalf("job %s state = %s, want %s (err=%q)", j.ID(), got, want, j.Err())
	}
}

func TestJobLifecycleDone(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	j, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	if s := j.State(); s != StateQueued && s != StateRunning && s != StateDone {
		t.Fatalf("fresh job in unexpected state %s", s)
	}
	waitState(t, j, StateDone)

	res := j.Result()
	if res == nil {
		t.Fatal("done job has no result")
	}
	if len(res.Layers) == 0 || len(res.Bits) != len(res.Layers) {
		t.Fatalf("malformed result: %d layers, %d bits", len(res.Layers), len(res.Bits))
	}
	if res.SigmaYL <= 0 {
		t.Fatalf("non-positive σ_YŁ %g", res.SigmaYL)
	}
	if res.ProfileCacheHit {
		t.Fatal("first submission cannot hit the profile cache")
	}
	v := j.View()
	if v.Started == nil || v.Finished == nil || v.Finished.Before(*v.Started) {
		t.Fatalf("inconsistent timestamps: %+v", v)
	}
}

func TestJobFailure(t *testing.T) {
	m := newTestManager(t, Config{
		Workers: 1,
		Resolver: func(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
			return nil, nil, fmt.Errorf("no such network")
		},
	})
	j, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if !strings.Contains(j.Err(), "no such network") {
		t.Fatalf("error not propagated: %q", j.Err())
	}
	if j.Result() != nil {
		t.Fatal("failed job has a result")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	cases := []JobRequest{
		{},                                // neither model nor network
		{Model: "x", Network: "y"},        // both
		{Model: "x", Objective: "??"},     // unknown objective
		{Model: "x", Objective: "custom"}, // custom without rho
	}
	for i, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Resolver: blockingResolver})
	j, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up.
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", j.State())
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt", d)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4, Resolver: blockingResolver})
	blocker, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, queued, StateCancelled)
	if queued.View().Started != nil {
		t.Fatal("queued job was started despite cancellation")
	}
	// Cancelling a terminal job is an idempotent no-op.
	if _, err := m.Cancel(queued.ID()); err != nil {
		t.Fatalf("second cancel: %v", err)
	}
	if _, err := m.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateCancelled)
}

func TestCancelUnknownJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	if _, err := m.Cancel("j-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

func TestQueueFull(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1, Resolver: blockingResolver})
	a, err := m.Submit(tinyRequest()) // occupies the worker
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker drained it from the channel, so the queue
	// slot is free for exactly one more job.
	deadline := time.Now().Add(5 * time.Second)
	for a.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(tinyRequest()); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := m.Submit(tinyRequest()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	m.Cancel(a.ID()) //nolint:errcheck
}

func TestProfileCacheHitOnIdenticalSubmission(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})

	first, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateDone)
	second, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, second, StateDone)

	if first.Result().ProfileCacheHit {
		t.Fatal("first submission hit the cache")
	}
	if !second.Result().ProfileCacheHit {
		t.Fatal("identical second submission missed the cache")
	}
	if hits, misses := m.Metrics().CacheHits(), m.Metrics().CacheMisses(); hits != 1 || misses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", hits, misses)
	}
	// The cached profile must produce the identical allocation.
	if fmt.Sprint(first.Result().Bits) != fmt.Sprint(second.Result().Bits) {
		t.Fatalf("cache changed the answer: %v vs %v", first.Result().Bits, second.Result().Bits)
	}

	// A different profiling config is a different content address.
	req := tinyRequest()
	req.Profile.Seed = 99
	third, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, third, StateDone)
	if third.Result().ProfileCacheHit {
		t.Fatal("different profile config must miss the cache")
	}
}

func TestProfileKeyNormalization(t *testing.T) {
	net, _, te := testnet.Trained()
	zero := profile.Config{}
	explicit := zero.Normalized()
	if ProfileKey(net, te, zero) != ProfileKey(net, te, explicit) {
		t.Fatal("zero config and its explicit defaults hash differently")
	}
	other := explicit
	other.Seed++
	if ProfileKey(net, te, explicit) == ProfileKey(net, te, other) {
		t.Fatal("different seeds hash identically")
	}
}

func TestConcurrentIdenticalSubmissionsShareOneProfilingRun(t *testing.T) {
	m := newTestManager(t, Config{Workers: 4})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := m.Submit(tinyRequest())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitState(t, j, StateDone)
	}
	if misses := m.Metrics().CacheMisses(); misses != 1 {
		t.Fatalf("%d profiling runs for identical concurrent jobs, want 1 (single-flight)", misses)
	}
	want := fmt.Sprint(jobs[0].Result().Bits)
	for _, j := range jobs[1:] {
		if fmt.Sprint(j.Result().Bits) != want {
			t.Fatalf("divergent results: %v vs %s", j.Result().Bits, want)
		}
	}
}

func TestGracefulShutdownFinishesInFlightJobs(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	m, err := New(Config{
		Workers: 1,
		Logf:    t.Logf,
		Resolver: func(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
			close(started)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			return testResolver(ctx, req)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- m.Shutdown(ctx)
	}()

	// New submissions are rejected while the in-flight job drains.
	deadline := time.Now().Add(5 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("manager never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(tinyRequest()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}

	close(release) // let the in-flight job finish
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitState(t, j, StateDone)
}

func TestShutdownDeadlineCancelsStuckJobs(t *testing.T) {
	m, err := New(Config{Workers: 1, Resolver: blockingResolver, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded", err)
	}
	waitState(t, j, StateCancelled)
}

func TestStageTimeoutFailsJob(t *testing.T) {
	m := newTestManager(t, Config{
		Workers:      1,
		StageTimeout: 20 * time.Millisecond,
		Resolver: func(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
			<-ctx.Done() // overruns the stage budget, but the job was not cancelled
			return nil, nil, ctx.Err()
		},
	})
	j, err := m.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if !strings.Contains(j.Err(), "deadline exceeded") {
		t.Fatalf("err = %q, want a deadline error", j.Err())
	}
}

// --- HTTP surface ---

func postJob(t *testing.T, ts *httptest.Server, body string) JobView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, ts, id)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPSubmitPollCancelMetrics(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	// Submit with lowercase JSON keys (case-insensitive decode).
	body := `{"model":"testnet","objective":"mac",
		"profile":{"images":8,"points":5,"seed":1},
		"search":{"reldrop":0.05,"evalimages":64,"tol":0.2,"seed":2}}`
	v := postJob(t, ts, body)
	if v.ID == "" || v.State == "" {
		t.Fatalf("bad submit response: %+v", v)
	}
	final := pollDone(t, ts, v.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if final.Result == nil || len(final.Result.Bits) == 0 {
		t.Fatal("done job returned no allocation")
	}
	if final.Result.Objective != "opt_for_mac" {
		t.Fatalf("objective %q", final.Result.Objective)
	}

	// Second identical submission: cache hit must be visible in /metrics.
	v2 := postJob(t, ts, body)
	if f := pollDone(t, ts, v2.ID); !f.CacheHit {
		t.Fatal("identical resubmission did not report a cache hit")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	metrics := sb.String()
	for _, want := range []string{
		"mupod_profile_cache_hits_total 1",
		"mupod_profile_cache_misses_total 1",
		`mupod_jobs_completed_total{state="done"} 2`,
		"mupod_stage_latency_seconds_bucket",
		"mupod_queue_depth 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Errors: unknown job, malformed body, unknown field.
	if resp, _ := http.Get(ts.URL + "/v1/jobs/j-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	if resp, _ := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
	if resp, _ := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"model":"x","bogus":1}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp.StatusCode)
	}

	// Listing returns every job.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []JobView
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all) != 2 {
		t.Fatalf("listing returned %d jobs, want 2", len(all))
	}

	// Healthz is OK while serving.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}

func TestHTTPDeleteCancelsRunningJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Resolver: blockingResolver})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	v := postJob(t, ts, `{"model":"testnet"}`)
	deadline := time.Now().Add(5 * time.Second)
	for getJob(t, ts, v.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("DELETE took %v, want prompt return", d)
	}
	if f := pollDone(t, ts, v.ID); f.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", f.State)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
