package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// maxRequestBody bounds POST /v1/jobs bodies (inline netdesc
// descriptions are small; 4 MiB is generous).
const maxRequestBody = 4 << 20

// tenantHeader attributes a request to a tenant when its body carries
// no "tenant" field (body wins when both are set).
const tenantHeader = "X-Mupod-Tenant"

// maxBatchItems bounds one POST /v1/jobs:batch request.
const maxBatchItems = 256

// BatchItemView is one item's outcome in a batch-submit response:
// Status holds the HTTP code the item would have received standalone
// (202, 400, 429 with RetryAfterSecs, ...), and exactly one of Job and
// Error is set.
type BatchItemView struct {
	Index          int      `json:"index"`
	Status         int      `json:"status"`
	Error          string   `json:"error,omitempty"`
	RetryAfterSecs int      `json:"retry_after_secs,omitempty"`
	Job            *JobView `json:"job,omitempty"`
}

// BatchView is the POST /v1/jobs:batch response body.
type BatchView struct {
	Accepted int             `json:"accepted"`
	Rejected int             `json:"rejected"`
	Items    []BatchItemView `json:"items"`
}

// NewHandler exposes a Manager over HTTP:
//
//	POST   /v1/jobs       submit a job            → 202 + JobView
//	POST   /v1/jobs:batch submit many jobs        → 202/207 + per-item results
//	         ({"jobs":[...]}; items are admitted independently, so a
//	          full queue or tenant quota sheds items — with per-item
//	          429s — not the batch; one journal fsync covers them all)
//	POST   /pareto        submit a Pareto-front job → 202 + JobView
//	         (a JobRequest whose "pareto" spec defaults to {} — the
//	          α-sweep; poll /v1/jobs/{id} for the front JSON)
//	GET    /v1/jobs       list jobs               → 200 + []JobView
//	         (?tenant=name filters to one tenant)
//	GET    /v1/jobs/{id}  poll one job            → 200 + JobView (incl. timeline)
//	DELETE /v1/jobs/{id}  cancel a job            → 202 + JobView
//	GET    /healthz       pure liveness           → 200 while the process serves
//	GET    /readyz        readiness               → 200, or 503 with the
//	         reasons (draining, queue saturated, breaker open) in the body
//	GET    /metrics       Prometheus text format  → 200
//	GET    /debug/trace/{id}  Chrome trace of a finished job → 200
//	         (?format=spans returns the plain span JSON instead)
//	GET    /debug/pprof/  runtime profiles (heap, goroutine, cpu, ...)
//
// In cluster mode (Manager.EnableCluster before NewHandler) three more
// routes appear — GET /cluster/health (heartbeat + peer states),
// POST /cluster/owned (ownership-record replication) and
// POST /cluster/handoff (drain handoff) — and submissions are forwarded
// to the owner node of their routing key unless the request already
// carries the X-Mupod-Forwarded hop header.
//
// Every route is wrapped in the RED-metrics middleware:
// mupod_http_requests_total{route,method,code},
// mupod_http_request_duration_seconds{route}, mupod_http_in_flight.
func NewHandler(m *Manager) http.Handler {
	cl := m.Cluster()
	routes := httpRoutes
	if cl != nil {
		routes = append(append([]string(nil), httpRoutes...), clusterRoutes...)
	}
	m.metrics.registerHTTP(routes)
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, m.instrument(route, h))
	}

	submit := func(w http.ResponseWriter, r *http.Request, forcePareto bool) {
		var req JobRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if req.Tenant == "" {
			req.Tenant = r.Header.Get(tenantHeader)
		}
		if forcePareto && req.Pareto == nil {
			req.Pareto = &ParetoSpec{}
		}
		if cl != nil {
			if r.Header.Get(forwardedHeader) != "" {
				// One hop max: a forwarded request is computed here even
				// if routing disagrees, so misrouting can never cycle.
				cl.forwardedIn.Inc()
			} else if resp := cl.maybeForward(r.Context(), &req, forcePareto); resp != nil {
				relayResponse(w, resp)
				return
			}
		}
		j, err := m.Submit(req)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQuota):
				// Overload is the client's cue to back off, not a
				// server fault: shed with 429 and a Retry-After sized
				// from the measured job duration and queue depth.
				w.Header().Set("Retry-After", fmt.Sprintf("%d", m.RetryAfter()))
				writeError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrDraining):
				writeError(w, http.StatusServiceUnavailable, err)
			default:
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		writeJSON(w, http.StatusAccepted, j.View())
	}

	handle("POST /v1/jobs", "/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(w, r, false)
	})

	// Batch submit: items are admitted independently (partial accept)
	// but journaled as one fsync batch. The response status is 202 when
	// everything was accepted, 207 on a mix, and the common rejection
	// status when nothing was.
	handle("POST /v1/jobs:batch", "/v1/jobs:batch", func(w http.ResponseWriter, r *http.Request) {
		var batch struct {
			Jobs []JobRequest `json:"jobs"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&batch); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if len(batch.Jobs) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("batch has no jobs"))
			return
		}
		if len(batch.Jobs) > maxBatchItems {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch has %d jobs (max %d)", len(batch.Jobs), maxBatchItems))
			return
		}
		headerTenant := r.Header.Get(tenantHeader)
		for i := range batch.Jobs {
			if batch.Jobs[i].Tenant == "" {
				batch.Jobs[i].Tenant = headerTenant
			}
		}

		results := m.SubmitBatch(batch.Jobs)
		view := BatchView{Items: make([]BatchItemView, len(results))}
		retryAfter := 0 // computed at most once per batch
		for i, res := range results {
			item := BatchItemView{Index: i}
			switch {
			case res.Err == nil:
				item.Status = http.StatusAccepted
				v := res.Job.View()
				item.Job = &v
				view.Accepted++
			case errors.Is(res.Err, ErrQueueFull), errors.Is(res.Err, ErrTenantQuota):
				if retryAfter == 0 {
					retryAfter = m.RetryAfter()
				}
				item.Status = http.StatusTooManyRequests
				item.RetryAfterSecs = retryAfter
				item.Error = res.Err.Error()
				view.Rejected++
			case errors.Is(res.Err, ErrDraining):
				item.Status = http.StatusServiceUnavailable
				item.Error = res.Err.Error()
				view.Rejected++
			default:
				item.Status = http.StatusBadRequest
				item.Error = res.Err.Error()
				view.Rejected++
			}
			view.Items[i] = item
		}
		status := http.StatusAccepted
		if view.Rejected > 0 {
			status = http.StatusMultiStatus
			if view.Accepted == 0 {
				// All rejected: surface the first item's status (and its
				// Retry-After when shedding) at the top level too.
				status = view.Items[0].Status
			}
		}
		if retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
		}
		writeJSON(w, status, view)
	})

	// POST /pareto is POST /v1/jobs with the pareto spec made implicit:
	// a request without one gets the default α-sweep spec. The job
	// lifecycle (polling, cancellation, journaling) is shared.
	handle("POST /pareto", "/pareto", func(w http.ResponseWriter, r *http.Request) {
		submit(w, r, true)
	})

	handle("GET /v1/jobs", "/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.JobsByTenant(r.URL.Query().Get("tenant"))
		views := make([]JobView, len(jobs))
		for i, j := range jobs {
			views[i] = j.View()
		}
		writeJSON(w, http.StatusOK, views)
	})

	handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Get(r.PathValue("id"))
		if err != nil {
			// In cluster mode a client may poll any node for a job that
			// lives elsewhere: the ID's node prefix says where to ask.
			if cl != nil && r.Header.Get(forwardedHeader) == "" {
				if resp := cl.proxyGet(r.Context(), r.PathValue("id")); resp != nil {
					relayResponse(w, resp)
					return
				}
			}
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, j.View())
	})

	handle("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.View())
	})

	// Pure liveness: 200 for as long as the process can serve HTTP at
	// all, even while draining — restarts are for dead processes, and a
	// draining daemon is doing exactly what it should. Routing decisions
	// belong to /readyz.
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"draining": m.Draining(),
			"workers":  m.Workers(),
			"queue":    m.QueueDepth(),
		})
	})

	// Readiness: 503 (with machine-readable reasons) while the daemon
	// should not receive new traffic — draining, shedding on a
	// saturated queue, or the profile circuit breaker failing fast.
	handle("GET /readyz", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reasons := m.Readiness()
		body := map[string]any{
			"status":  "ready",
			"workers": m.Workers(),
			"queue":   m.QueueDepth(),
		}
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
			body["status"] = "unready"
			body["reasons"] = reasons
		}
		writeJSON(w, status, body)
	})

	handle("GET /metrics", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteMetrics(w)
	})

	handle("GET /debug/trace/{id}", "/debug/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		tr := j.Tracer()
		if tr == nil {
			writeError(w, http.StatusNotFound, errors.New("serve: job has no trace (tracing disabled or job never started)"))
			return
		}
		if !j.State().Terminal() {
			writeError(w, http.StatusConflict, fmt.Errorf("serve: job is %s; trace is available once it finishes", j.State()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "spans" {
			tr.WriteJSON(w)
			return
		}
		tr.WriteChromeTrace(w)
	})

	// The pprof handlers self-register only on http.DefaultServeMux;
	// mount them explicitly since the daemon serves a private mux.
	// Index also serves the named profiles (heap, goroutine, block, ...).
	// They share one route label — per-profile cardinality is noise.
	if cl != nil {
		handle("GET /cluster/health", "/cluster/health", cl.handleHealth)
		handle("POST /cluster/owned", "/cluster/owned", cl.handleOwned)
		handle("POST /cluster/handoff", "/cluster/handoff", cl.handleHandoff)
	}

	handle("GET /debug/pprof/", "/debug/pprof/", pprof.Index)
	handle("GET /debug/pprof/cmdline", "/debug/pprof/", pprof.Cmdline)
	handle("GET /debug/pprof/profile", "/debug/pprof/", pprof.Profile)
	handle("GET /debug/pprof/symbol", "/debug/pprof/", pprof.Symbol)
	handle("GET /debug/pprof/trace", "/debug/pprof/", pprof.Trace)

	return mux
}

// WriteMetrics renders the full metrics page. Everything — counters,
// stage histograms, manager gauges, build info and the exec/solver
// engine counters — lives on the one shared obs registry.
func (m *Manager) WriteMetrics(w interface{ Write([]byte) (int, error) }) {
	m.metrics.Registry().Write(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
