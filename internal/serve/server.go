package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// maxRequestBody bounds POST /v1/jobs bodies (inline netdesc
// descriptions are small; 4 MiB is generous).
const maxRequestBody = 4 << 20

// NewHandler exposes a Manager over HTTP:
//
//	POST   /v1/jobs       submit a job            → 202 + JobView
//	POST   /pareto        submit a Pareto-front job → 202 + JobView
//	         (a JobRequest whose "pareto" spec defaults to {} — the
//	          α-sweep; poll /v1/jobs/{id} for the front JSON)
//	GET    /v1/jobs       list jobs               → 200 + []JobView
//	GET    /v1/jobs/{id}  poll one job            → 200 + JobView
//	DELETE /v1/jobs/{id}  cancel a job            → 202 + JobView
//	GET    /healthz       liveness/readiness      → 200 (503 while draining)
//	GET    /metrics       Prometheus text format  → 200
//	GET    /debug/trace/{id}  Chrome trace of a finished job → 200
//	         (?format=spans returns the plain span JSON instead)
//	GET    /debug/pprof/  runtime profiles (heap, goroutine, cpu, ...)
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	submit := func(w http.ResponseWriter, r *http.Request, forcePareto bool) {
		var req JobRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if forcePareto && req.Pareto == nil {
			req.Pareto = &ParetoSpec{}
		}
		j, err := m.Submit(req)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				// Overload is the client's cue to back off, not a
				// server fault: shed with 429 and a Retry-After sized
				// from the measured job duration and queue depth.
				w.Header().Set("Retry-After", fmt.Sprintf("%d", m.RetryAfter()))
				writeError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrDraining):
				writeError(w, http.StatusServiceUnavailable, err)
			default:
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		writeJSON(w, http.StatusAccepted, j.View())
	}

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(w, r, false)
	})

	// POST /pareto is POST /v1/jobs with the pareto spec made implicit:
	// a request without one gets the default α-sweep spec. The job
	// lifecycle (polling, cancellation, journaling) is shared.
	mux.HandleFunc("POST /pareto", func(w http.ResponseWriter, r *http.Request) {
		submit(w, r, true)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		views := make([]JobView, len(jobs))
		for i, j := range jobs {
			views[i] = j.View()
		}
		writeJSON(w, http.StatusOK, views)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, j.View())
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.View())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		body := map[string]any{
			"status":  "ok",
			"workers": m.Workers(),
			"queue":   m.QueueDepth(),
		}
		if m.Draining() {
			status = http.StatusServiceUnavailable
			body["status"] = "draining"
		}
		writeJSON(w, status, body)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteMetrics(w)
	})

	mux.HandleFunc("GET /debug/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		tr := j.Tracer()
		if tr == nil {
			writeError(w, http.StatusNotFound, errors.New("serve: job has no trace (tracing disabled or job never started)"))
			return
		}
		if !j.State().Terminal() {
			writeError(w, http.StatusConflict, fmt.Errorf("serve: job is %s; trace is available once it finishes", j.State()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "spans" {
			tr.WriteJSON(w)
			return
		}
		tr.WriteChromeTrace(w)
	})

	// The pprof handlers self-register only on http.DefaultServeMux;
	// mount them explicitly since the daemon serves a private mux.
	// Index also serves the named profiles (heap, goroutine, block, ...).
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	return mux
}

// WriteMetrics renders the full metrics page. Everything — counters,
// stage histograms, manager gauges, build info and the exec/solver
// engine counters — lives on the one shared obs registry.
func (m *Manager) WriteMetrics(w interface{ Write([]byte) (int, error) }) {
	m.metrics.Registry().Write(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
