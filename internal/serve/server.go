package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// maxRequestBody bounds POST /v1/jobs bodies (inline netdesc
// descriptions are small; 4 MiB is generous).
const maxRequestBody = 4 << 20

// NewHandler exposes a Manager over HTTP:
//
//	POST   /v1/jobs       submit a job            → 202 + JobView
//	POST   /pareto        submit a Pareto-front job → 202 + JobView
//	         (a JobRequest whose "pareto" spec defaults to {} — the
//	          α-sweep; poll /v1/jobs/{id} for the front JSON)
//	GET    /v1/jobs       list jobs               → 200 + []JobView
//	GET    /v1/jobs/{id}  poll one job            → 200 + JobView (incl. timeline)
//	DELETE /v1/jobs/{id}  cancel a job            → 202 + JobView
//	GET    /healthz       pure liveness           → 200 while the process serves
//	GET    /readyz        readiness               → 200, or 503 with the
//	         reasons (draining, queue saturated, breaker open) in the body
//	GET    /metrics       Prometheus text format  → 200
//	GET    /debug/trace/{id}  Chrome trace of a finished job → 200
//	         (?format=spans returns the plain span JSON instead)
//	GET    /debug/pprof/  runtime profiles (heap, goroutine, cpu, ...)
//
// Every route is wrapped in the RED-metrics middleware:
// mupod_http_requests_total{route,method,code},
// mupod_http_request_duration_seconds{route}, mupod_http_in_flight.
func NewHandler(m *Manager) http.Handler {
	m.metrics.registerHTTP(httpRoutes)
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, m.instrument(route, h))
	}

	submit := func(w http.ResponseWriter, r *http.Request, forcePareto bool) {
		var req JobRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if forcePareto && req.Pareto == nil {
			req.Pareto = &ParetoSpec{}
		}
		j, err := m.Submit(req)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				// Overload is the client's cue to back off, not a
				// server fault: shed with 429 and a Retry-After sized
				// from the measured job duration and queue depth.
				w.Header().Set("Retry-After", fmt.Sprintf("%d", m.RetryAfter()))
				writeError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrDraining):
				writeError(w, http.StatusServiceUnavailable, err)
			default:
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		writeJSON(w, http.StatusAccepted, j.View())
	}

	handle("POST /v1/jobs", "/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(w, r, false)
	})

	// POST /pareto is POST /v1/jobs with the pareto spec made implicit:
	// a request without one gets the default α-sweep spec. The job
	// lifecycle (polling, cancellation, journaling) is shared.
	handle("POST /pareto", "/pareto", func(w http.ResponseWriter, r *http.Request) {
		submit(w, r, true)
	})

	handle("GET /v1/jobs", "/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		views := make([]JobView, len(jobs))
		for i, j := range jobs {
			views[i] = j.View()
		}
		writeJSON(w, http.StatusOK, views)
	})

	handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, j.View())
	})

	handle("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.View())
	})

	// Pure liveness: 200 for as long as the process can serve HTTP at
	// all, even while draining — restarts are for dead processes, and a
	// draining daemon is doing exactly what it should. Routing decisions
	// belong to /readyz.
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"draining": m.Draining(),
			"workers":  m.Workers(),
			"queue":    m.QueueDepth(),
		})
	})

	// Readiness: 503 (with machine-readable reasons) while the daemon
	// should not receive new traffic — draining, shedding on a
	// saturated queue, or the profile circuit breaker failing fast.
	handle("GET /readyz", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reasons := m.Readiness()
		body := map[string]any{
			"status":  "ready",
			"workers": m.Workers(),
			"queue":   m.QueueDepth(),
		}
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
			body["status"] = "unready"
			body["reasons"] = reasons
		}
		writeJSON(w, status, body)
	})

	handle("GET /metrics", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteMetrics(w)
	})

	handle("GET /debug/trace/{id}", "/debug/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		tr := j.Tracer()
		if tr == nil {
			writeError(w, http.StatusNotFound, errors.New("serve: job has no trace (tracing disabled or job never started)"))
			return
		}
		if !j.State().Terminal() {
			writeError(w, http.StatusConflict, fmt.Errorf("serve: job is %s; trace is available once it finishes", j.State()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "spans" {
			tr.WriteJSON(w)
			return
		}
		tr.WriteChromeTrace(w)
	})

	// The pprof handlers self-register only on http.DefaultServeMux;
	// mount them explicitly since the daemon serves a private mux.
	// Index also serves the named profiles (heap, goroutine, block, ...).
	// They share one route label — per-profile cardinality is noise.
	handle("GET /debug/pprof/", "/debug/pprof/", pprof.Index)
	handle("GET /debug/pprof/cmdline", "/debug/pprof/", pprof.Cmdline)
	handle("GET /debug/pprof/profile", "/debug/pprof/", pprof.Profile)
	handle("GET /debug/pprof/symbol", "/debug/pprof/", pprof.Symbol)
	handle("GET /debug/pprof/trace", "/debug/pprof/", pprof.Trace)

	return mux
}

// WriteMetrics renders the full metrics page. Everything — counters,
// stage histograms, manager gauges, build info and the exec/solver
// engine counters — lives on the one shared obs registry.
func (m *Manager) WriteMetrics(w interface{ Write([]byte) (int, error) }) {
	m.metrics.Registry().Write(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
