package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mupod/internal/dataset"
	"mupod/internal/fault"
	"mupod/internal/nn"
)

// gateResolver resolves instantly except for requests marked with
// gateSeed, which park until release is closed — a way to pin the
// worker pool while a backlog accumulates.
const gateSeed = 999

func gateResolver(release <-chan struct{}) Resolver {
	return func(ctx context.Context, req *JobRequest) (*nn.Network, *dataset.Dataset, error) {
		if req.Seed == gateSeed {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		return testResolver(ctx, req)
	}
}

func tenantRequest(tenant string) JobRequest {
	req := tinyRequest()
	req.Tenant = tenant
	return req
}

// TestFairnessWeightedCompletion is the fairness property test: with
// one worker and tenants weighted 2:1, a saturated backlog completes in
// the exact a,a,b deficit-round-robin interleave (ratio 2:1), and the
// results are bit-identical across tenants because the caches are
// content-addressed, not tenant-scoped.
func TestFairnessWeightedCompletion(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, Config{
		Workers:       1,
		QueueDepth:    64,
		TenantWeights: map[string]int{"a": 2, "b": 1},
		Resolver:      gateResolver(release),
	})

	// Pin the worker so the whole backlog is queued before any of it is
	// scheduled.
	gate := tenantRequest("gate")
	gate.Seed = gateSeed
	gj, err := m.Submit(gate)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, gj)

	// Interleave the submissions adversarially (b first, alternating):
	// arrival order must not matter, only weights.
	var jobs []*Job
	for i := 0; i < 5; i++ {
		for _, tenant := range []string{"b", "a", "a"} {
			j, err := m.Submit(tenantRequest(tenant))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	close(release)

	for _, j := range jobs {
		waitState(t, j, StateDone)
	}

	// Completion order == dequeue order (one worker): read it off the
	// finish timestamps.
	sort.Slice(jobs, func(i, k int) bool {
		return jobs[i].View().Finished.Before(*jobs[k].View().Finished)
	})
	var order []string
	for _, j := range jobs {
		order = append(order, j.TenantName())
	}
	want := []string{"b", "a", "a", "a", "a", "b", "a", "a", "b", "a", "a", "b", "a", "a", "b"}
	// The first turn goes to b (it joined the ring first), then the
	// deficit cycle settles into a,a,b. Rather than over-specify the
	// opening, assert the DRR ratio on a sliding window: every window
	// of 3 completions holds exactly one b.
	for i := 0; i+3 <= len(order); i++ {
		bs := 0
		for _, tn := range order[i : i+3] {
			if tn == "b" {
				bs++
			}
		}
		if bs != 1 {
			t.Fatalf("completion window [%d,%d) = %v has %d b's, want exactly 1 (full order %v, reference %v)",
				i, i+3, order[i:i+3], bs, order, want)
		}
	}
	// Overall ratio 10:5 — exact 2:1, trivially within the 15% gate.
	var na, nb int
	for _, tn := range order {
		if tn == "a" {
			na++
		} else {
			nb++
		}
	}
	if na != 10 || nb != 5 {
		t.Fatalf("completions a=%d b=%d, want 10 and 5", na, nb)
	}

	// Bit-identical results regardless of tenant: same spec, same bits.
	ref := jobs[0].Result().Bits
	if len(ref) == 0 {
		t.Fatal("first job has no bit allocation")
	}
	for _, j := range jobs {
		if !reflect.DeepEqual(j.Result().Bits, ref) {
			t.Fatalf("job %s (tenant %s) bits %v differ from %v — tenancy leaked into results",
				j.ID(), j.TenantName(), j.Result().Bits, ref)
		}
	}
}

// waitRunning polls until the job reaches StateRunning (and is counted
// in-flight, which happens on the same path before the journal append).
func waitRunning(t *testing.T, m *Manager, j *Job) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == StateRunning && m.inflight.Load() > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached running (state %s)", j.ID(), j.State())
}

// TestBatchSubmitSingleFlush: a batch of N accepted jobs costs exactly
// one journal flush (the acceptance bound is ≤ 2 fsyncs).
func TestBatchSubmitSingleFlush(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	dir := t.TempDir()
	m := newTestManager(t, Config{
		Workers: 1, QueueDepth: 16, DataDir: dir, NoFsync: true,
		Resolver: gateResolver(release),
	})

	gate := tinyRequest()
	gate.Seed = gateSeed
	gj, err := m.Submit(gate)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, gj)

	before := m.journal.Flushes()
	reqs := make([]JobRequest, 5)
	for i := range reqs {
		reqs[i] = tenantRequest("batch")
	}
	results := m.SubmitBatch(reqs)
	flushes := m.journal.Flushes() - before
	if flushes > 2 {
		t.Fatalf("batch submit of %d jobs cost %d journal flushes, want <= 2", len(reqs), flushes)
	}
	if flushes != 1 {
		t.Errorf("batch submit of %d jobs cost %d journal flushes, want 1", len(reqs), flushes)
	}
	for i, res := range results {
		if res.Err != nil || res.Job == nil {
			t.Fatalf("batch item %d: %v", i, res.Err)
		}
	}
	if got := m.Metrics().TenantJobs("batch"); got != 5 {
		t.Errorf("mupod_tenant_jobs_total{tenant=batch} = %d, want 5", got)
	}
}

// TestBatchEndpointPartialAccept: POST /v1/jobs:batch admits what fits
// and sheds the rest with per-item 429s and a 207 overall.
func TestBatchEndpointPartialAccept(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{
		Workers: 1, QueueDepth: 3, Resolver: gateResolver(release),
	})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	gate := tinyRequest()
	gate.Seed = gateSeed
	gj, err := m.Submit(gate)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, gj)

	item := `{"model":"testnet","profile":{"images":8,"points":5,"seed":1},"search":{"reldrop":0.05,"evalimages":64,"tol":0.2,"seed":2}}`
	body := fmt.Sprintf(`{"jobs":[%s,%s,%s,%s,%s]}`, item, item, item, item, item)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs:batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Mupod-Tenant", "hdr-tenant")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("batch status = %d, want 207", resp.StatusCode)
	}
	var view BatchView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Accepted != 3 || view.Rejected != 2 {
		t.Fatalf("accepted=%d rejected=%d, want 3/2", view.Accepted, view.Rejected)
	}
	for i, it := range view.Items {
		switch {
		case i < 3:
			if it.Status != http.StatusAccepted || it.Job == nil || it.Job.Tenant != "hdr-tenant" {
				t.Fatalf("item %d = %+v, want accepted with header tenant", i, it)
			}
		default:
			if it.Status != http.StatusTooManyRequests || it.RetryAfterSecs < 1 {
				t.Fatalf("item %d = %+v, want 429 with retry_after_secs", i, it)
			}
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("partial batch carried no Retry-After header")
	}
	if got := m.Metrics().TenantShed("hdr-tenant"); got != 2 {
		t.Errorf("mupod_tenant_shed_total{tenant=hdr-tenant} = %d, want 2", got)
	}
}

// TestTenantQuota: with a per-tenant quota, one tenant exhausting its
// share sheds with ErrTenantQuota while other tenants still admit.
func TestTenantQuota(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{
		Workers: 1, QueueDepth: 16, TenantQuota: 2, Resolver: gateResolver(release),
	})

	gate := tinyRequest()
	gate.Seed = gateSeed
	gj, err := m.Submit(gate)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, gj)

	for i := 0; i < 2; i++ {
		if _, err := m.Submit(tenantRequest("greedy")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit(tenantRequest("greedy")); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third greedy submit = %v, want ErrTenantQuota", err)
	}
	if _, err := m.Submit(tenantRequest("polite")); err != nil {
		t.Fatalf("other tenant shed too: %v", err)
	}
	if got := m.TenantQueueDepth("greedy"); got != 2 {
		t.Errorf("TenantQueueDepth(greedy) = %d, want 2", got)
	}
	if got := m.Metrics().TenantShed("greedy"); got != 1 {
		t.Errorf("mupod_tenant_shed_total{tenant=greedy} = %d, want 1", got)
	}
}

// TestTenantListFilterAndMetricsPage: GET /v1/jobs?tenant= filters, the
// JobView carries the tenant, and /metrics exposes the tenant families.
func TestTenantListFilterAndMetricsPage(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var jobs []*Job
	for _, tenant := range []string{"a", "a", "b"} {
		j, err := m.Submit(tenantRequest(tenant))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitState(t, j, StateDone)
	}

	var views []JobView
	if err := json.Unmarshal([]byte(httpGet(t, ts.URL+"/v1/jobs?tenant=a")), &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Fatalf("tenant=a filter returned %d jobs, want 2", len(views))
	}
	for _, v := range views {
		if v.Tenant != "a" {
			t.Fatalf("filtered view has tenant %q", v.Tenant)
		}
	}

	page := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		`mupod_tenant_jobs_total{tenant="a"} 2`,
		`mupod_tenant_jobs_total{tenant="b"} 1`,
		`mupod_tenant_queue_depth{tenant="a"} 0`,
		`mupod_tenant_shed_total{tenant="a"} 0`,
		`mupod_tenant_job_duration_seconds_count{tenant="b"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTenantMetricsCardinalityBound: past maxTenantSeries distinct
// tenants the exposition folds into "_other" instead of growing without
// bound.
func TestTenantMetricsCardinalityBound(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4})
	for i := 0; i < maxTenantSeries+8; i++ {
		m.tenantSeries(fmt.Sprintf("t%03d", i)).jobs.Inc()
	}
	mm := m.Metrics()
	mm.tenantMu.Lock()
	n := len(mm.tenants)
	_, overflow := mm.tenants[tenantOverflow]
	mm.tenantMu.Unlock()
	if n != maxTenantSeries+1 || !overflow {
		t.Fatalf("tenant series = %d (overflow present=%v), want %d + %q", n, overflow, maxTenantSeries, tenantOverflow)
	}
	if got := mm.TenantJobs(tenantOverflow); got != 8 {
		t.Fatalf("overflow series holds %d jobs, want 8", got)
	}
}

// TestRetryRequeueRespectsQueueDepth is the regression test for the
// retry-admission bug: after crash recovery force-admits a backlog
// larger than QueueDepth, a retrying job must wait for the queue to
// drain below the configured bound before re-entering. The old check
// (len < cap on a recovery-oversized channel) re-admitted immediately.
func TestRetryRequeueRespectsQueueDepth(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()

	// Uptime A: park the worker and build a 3-job backlog, then crash.
	releaseA := make(chan struct{})
	defer close(releaseA)
	a := newTestManager(t, Config{
		Workers: 1, QueueDepth: 8, DataDir: dir, NoFsync: true,
		Resolver: gateResolver(releaseA),
	})
	gate := tinyRequest()
	gate.Seed = gateSeed
	gj, err := a.Submit(gate)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, a, gj)
	for i := 0; i < 3; i++ {
		// The backlog jobs gate too: in uptime B they pin the worker so
		// the recovered queue provably stays above the new depth.
		req := tinyRequest()
		req.Seed = gateSeed
		if _, err := a.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	a.Crash()

	// Uptime B: QueueDepth 1, so the recovered 4-job backlog is far
	// over the bound. The first job's first run fails transiently; its
	// retry must stay parked (interrupted) while the backlog holds the
	// queue at or above depth — it cannot ride the oversized capacity
	// back in.
	if err := fault.Enable("serve.resolve", "1*error(transient:chaos)"); err != nil {
		t.Fatal(err)
	}
	releaseB := make(chan struct{})
	b := newTestManager(t, Config{
		Workers: 1, QueueDepth: 1, DataDir: dir, NoFsync: true,
		MaxAttempts: 3, RetryBaseDelay: 2 * time.Millisecond, RetryMaxDelay: 4 * time.Millisecond,
		Resolver: gateResolver(releaseB),
	})
	first, err := b.Get(gj.ID())
	if err != nil {
		t.Fatal(err)
	}
	// The interrupted gate job is first in the recovered queue, so it
	// absorbs the armed transient failure and parks for retry. (Its
	// gateSeed only matters once it resolves — releaseB stays open for
	// the moment so the worker pins on the next job.)
	deadline := time.Now().Add(10 * time.Second)
	for first.State() != StateInterrupted {
		if time.Now().After(deadline) {
			t.Fatalf("first job state = %s, never interrupted", first.State())
		}
		time.Sleep(time.Millisecond)
	}

	// Backoff is single-digit milliseconds; give the retry goroutine
	// many chances to (wrongly) re-queue. Queue occupancy stays >= 2
	// (recovered jobs) against a depth of 1, so it must hold parked.
	time.Sleep(150 * time.Millisecond)
	if got := first.State(); got != StateInterrupted {
		t.Fatalf("retry re-entered a queue holding %d >= depth %d jobs (state %s)",
			b.QueueDepth(), 1, got)
	}
	if got := b.QueueDepth(); got < 2 {
		t.Fatalf("test premise broken: recovered queue drained to %d early", got)
	}

	// Unpin: the backlog drains under the bound and the retry admits.
	close(releaseB)
	waitState(t, first, StateDone)
	for _, j := range b.Jobs() {
		waitState(t, j, StateDone)
	}
}

// TestCompactionCrashWindowIsAtomic is the chaos regression for the
// startup-compaction crash window: a kill between snapshot install and
// journal truncation used to replay the stale journal on top of the
// compacted snapshot (duplicate records, resurrected states). The epoch
// guard must ignore the stale journal instead.
func TestCompactionCrashWindowIsAtomic(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()

	a := newTestManager(t, Config{Workers: 1, DataDir: dir, NoFsync: true})
	j1, err := a.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := a.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone)
	waitState(t, j2, StateDone)
	a.Crash()

	// Restart B dies exactly in the window: new snapshot installed, old
	// journal still in place.
	if err := fault.Enable("serve.compact.window", "1*panic(killed in compaction window)"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("compaction-window failpoint did not fire")
			}
		}()
		New(Config{Workers: 1, DataDir: dir, NoFsync: true, Resolver: testResolver, Logf: t.Logf}) //nolint:errcheck
	}()

	// Restart C recovers for real. The stale journal must be detected
	// (epoch mismatch) and ignored — no duplicated history, results
	// intact, attempts not inflated.
	var lc logCapture
	c, err := New(Config{Workers: 1, DataDir: dir, NoFsync: true, Resolver: testResolver, Logf: lc.logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Shutdown(ctx) //nolint:errcheck
	})
	if !lc.contains("ignoring the stale journal") {
		t.Errorf("recovery did not flag the stale journal; log: %v", lc.lines)
	}
	for _, id := range []string{j1.ID(), j2.ID()} {
		got, err := c.Get(id)
		if err != nil {
			t.Fatalf("job %s lost across the crash window: %v", id, err)
		}
		if got.State() != StateDone || got.Result() == nil {
			t.Fatalf("job %s = {state %s, result %v}, want done with result", id, got.State(), got.Result())
		}
		if got.Attempt() != 1 {
			t.Errorf("job %s attempt = %d, want 1 (stale replay inflated it)", id, got.Attempt())
		}
		var done int
		for _, e := range got.Timeline() {
			if e.Event == string(StateDone) {
				done++
			}
		}
		if done != 1 {
			t.Errorf("job %s timeline has %d done entries, want 1 (stale replay duplicated history)", id, done)
		}
	}
	if got := len(c.Jobs()); got != 2 {
		t.Errorf("recovered %d jobs, want 2", got)
	}
}

// TestAdmissionRaceHammer interleaves Submit storms, transient-failure
// retries and Shutdown on a recovery-oversized queue — the interleaving
// that motivated unifying admission behind one reservation path. Run
// with -race; the assertions are liveness plus the admission invariant.
func TestAdmissionRaceHammer(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()

	// Build a recovered backlog above QueueDepth.
	releaseA := make(chan struct{})
	defer close(releaseA)
	a := newTestManager(t, Config{
		Workers: 1, QueueDepth: 16, DataDir: dir, NoFsync: true,
		Resolver: gateResolver(releaseA),
	})
	gate := tinyRequest()
	gate.Seed = gateSeed
	gj, err := a.Submit(gate)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, a, gj)
	for i := 0; i < 7; i++ {
		if _, err := a.Submit(tenantRequest(fmt.Sprintf("t%d", i%3))); err != nil {
			t.Fatal(err)
		}
	}
	a.Crash()

	// Every few resolves fails transiently, keeping retryLater busy.
	if err := fault.Enable("serve.resolve", "4*error(transient:chaos)"); err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Workers: 2, QueueDepth: 4, TenantQuota: 3, DataDir: dir, NoFsync: true,
		MaxAttempts: 3, RetryBaseDelay: time.Millisecond, RetryMaxDelay: 2 * time.Millisecond,
		TenantWeights: map[string]int{"t0": 2, "t1": 1},
		Resolver:      testResolver,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := tenantRequest(fmt.Sprintf("t%d", rng.Intn(4)))
				if _, err := m.Submit(req); err != nil &&
					!errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrTenantQuota) && !errors.Is(err, ErrDraining) {
					t.Errorf("submit: %v", err)
					return
				}
				if i%8 == 0 {
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				}
			}
		}(g)
	}
	// Sample the admission invariant while the storm runs: occupancy
	// never exceeds the recovered backlog, and once it has drained to
	// QueueDepth it never climbs back above it.
	var belowOnce bool
	for i := 0; i < 100; i++ {
		d := m.QueueDepth()
		if d > 8 && !belowOnce {
			t.Errorf("queue depth %d exceeds the recovered backlog", d)
		}
		if belowOnce && d > 4 {
			t.Errorf("queue depth %d re-exceeded QueueDepth 4 after draining", d)
		}
		if d <= 4 {
			belowOnce = true
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under storm: %v", err)
	}
	for _, j := range m.Jobs() {
		if !j.State().Terminal() {
			t.Errorf("job %s left non-terminal after shutdown: %s", j.ID(), j.State())
		}
	}
}
