package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range are clamped into the first/last bin so no sample is lost, which
// matches how the paper's Fig. 3 histogram treats its tails.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics on a degenerate range or non-positive bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if !(hi > lo) || bins <= 0 {
		panic(fmt.Sprintf("stats: bad histogram range [%g,%g) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	b := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.Total++
}

// AddAll records every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the empirical probability density of bin i.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.Total) * w)
}

// NormalPDF is the density of N(mean, sd²) at x.
func NormalPDF(x, mean, sd float64) float64 {
	if sd <= 0 {
		return 0
	}
	z := (x - mean) / sd
	return math.Exp(-0.5*z*z) / (sd * math.Sqrt(2*math.Pi))
}

// GaussianFitError compares the histogram against N(mean, sd²) and
// returns the mean absolute density error normalized by the Gaussian
// peak density. Small values (≲0.05) indicate the data is visually
// indistinguishable from the Gaussian, which is the claim in Fig. 3
// (right) of the paper.
func (h *Histogram) GaussianFitError(mean, sd float64) float64 {
	if h.Total == 0 || sd <= 0 {
		return math.NaN()
	}
	peak := NormalPDF(mean, mean, sd)
	var sum float64
	for i := range h.Counts {
		x := h.BinCenter(i)
		sum += math.Abs(h.Density(i) - NormalPDF(x, mean, sd))
	}
	return sum / float64(len(h.Counts)) / peak
}

// Render draws the histogram as ASCII art with the given number of
// character columns for the tallest bin, one bin per row. It is used by
// the figure-reproduction commands.
func (h *Histogram) Render(width int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := int(math.Round(float64(c) / float64(maxC) * float64(width)))
		fmt.Fprintf(&b, "%+8.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
