package stats

import (
	"math"
	"strings"
	"testing"

	"mupod/internal/rng"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{0.5, 1.5, 1.6, 9.9})
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total != 4 {
		t.Fatalf("total = %d", h.Total)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(-1, 1, 4)
	h.Add(-100)
	h.Add(+100)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("outliers not clamped: %v", h.Counts)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on inverted range")
		}
	}()
	NewHistogram(1, 0, 4)
}

func TestBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if c := h.BinCenter(0); c != 0.5 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
	if c := h.BinCenter(9); c != 9.5 {
		t.Fatalf("BinCenter(9) = %v", c)
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(-4, 4, 32)
	r := rng.New(3)
	for i := 0; i < 20000; i++ {
		h.Add(r.Normal())
	}
	w := 8.0 / 32
	integral := 0.0
	for i := range h.Counts {
		integral += h.Density(i) * w
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("density integral = %v", integral)
	}
}

func TestNormalPDF(t *testing.T) {
	if got := NormalPDF(0, 0, 1); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("NormalPDF(0;0,1) = %v", got)
	}
	if NormalPDF(0, 0, 0) != 0 {
		t.Fatal("degenerate sd should give 0")
	}
}

func TestGaussianFitErrorOnGaussianData(t *testing.T) {
	h := NewHistogram(-4, 4, 40)
	r := rng.New(5)
	for i := 0; i < 300000; i++ {
		h.Add(r.Normal())
	}
	if e := h.GaussianFitError(0, 1); e > 0.02 {
		t.Fatalf("Gaussian data fit error = %v", e)
	}
	// A badly mismatched reference must score much worse.
	if e := h.GaussianFitError(2, 0.3); e < 0.1 {
		t.Fatalf("mismatched Gaussian scored too well: %v", e)
	}
}

func TestGaussianFitErrorDegenerate(t *testing.T) {
	h := NewHistogram(-1, 1, 4)
	if !math.IsNaN(h.GaussianFitError(0, 1)) {
		t.Fatal("empty histogram should give NaN")
	}
}

func TestRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.AddAll([]float64{0.5, 0.6, 1.5})
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Fatalf("render has no bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("render has %d lines, want 2", lines)
	}
	if NewHistogram(0, 1, 3).Render(10) != "(empty histogram)\n" {
		t.Fatal("empty histogram render wrong")
	}
}
