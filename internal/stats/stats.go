// Package stats implements the descriptive statistics and ordinary
// least-squares regression the precision-optimization pipeline relies
// on: the paper's core procedure fits Δ_XK ≈ λ_K·σ_{Y_K→Ł} + θ_K per
// layer by linear regression over ~20 injection measurements (Sec. V-A),
// and validates that the output error is approximately Gaussian
// (Fig. 3 right).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (division by n, not
// n-1): quantization-noise theory works with population moments and the
// sample sizes here are in the thousands, where the distinction is
// irrelevant.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns both the mean and population standard deviation in a
// single pass (Welford's algorithm, numerically stable for the large
// activation vectors this package sees).
func MeanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var m, m2 float64
	for i, x := range xs {
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	return m, math.Sqrt(m2 / float64(len(xs)))
}

// LinearFit is the result of an ordinary least-squares fit
// y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	N         int     // number of points fitted
}

// FitLine fits y ≈ slope·x + intercept by ordinary least squares. It
// returns an error when fewer than two points are supplied or the x
// values are (numerically) constant, both of which make the slope
// undefined.
func FitLine(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: FitLine length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLine needs at least 2 points, got %d", n)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLine x values are constant")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		// residual sum of squares
		var rss float64
		for i := 0; i < n; i++ {
			r := y[i] - (slope*x[i] + intercept)
			rss += r * r
		}
		r2 = 1 - rss/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// FitLineWeighted fits y ≈ slope·x + intercept by weighted least
// squares. With weights w_i = 1/y_i² the fit minimizes the RELATIVE
// residuals Σ((ŷ−y)/y)², which is the right loss when the points span
// decades (the profiler's log-spaced Δ sweep) and the paper's quality
// metric is the relative prediction error of Δ.
func FitLineWeighted(x, y, w []float64) (LinearFit, error) {
	if len(x) != len(y) || len(x) != len(w) {
		return LinearFit{}, fmt.Errorf("stats: FitLineWeighted length mismatch %d/%d/%d", len(x), len(y), len(w))
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLineWeighted needs at least 2 points, got %d", n)
	}
	var sw, swx, swy float64
	for i := 0; i < n; i++ {
		sw += w[i]
		swx += w[i] * x[i]
		swy += w[i] * y[i]
	}
	if sw <= 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLineWeighted non-positive total weight")
	}
	mx, my := swx/sw, swy/sw
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		sxx += w[i] * dx * dx
		sxy += w[i] * dx * (y[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLineWeighted x values are constant")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// R² is still reported unweighted for comparability with FitLine.
	var rss, syy float64
	myu := Mean(y)
	for i := 0; i < n; i++ {
		r := y[i] - (slope*x[i] + intercept)
		rss += r * r
		d := y[i] - myu
		syy += d * d
	}
	r2 := 1.0
	if syy > 0 {
		r2 = 1 - rss/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// RelativeErrors returns |predicted-actual|/|actual| for each point,
// used to reproduce the paper's "<5% prediction error, worst case ~10%"
// validation of Eq. 5 (Sec. IV).
func (f LinearFit) RelativeErrors(x, y []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		p := f.Predict(x[i])
		if y[i] == 0 {
			out[i] = math.Abs(p)
			continue
		}
		out[i] = math.Abs(p-y[i]) / math.Abs(y[i])
	}
	return out
}

// Max returns the maximum of xs (−Inf for an empty slice).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (+Inf for an empty slice).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. It copies and sorts the
// input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
