package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mupod/internal/rng"
)

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice statistics should be 0")
	}
	m, s := MeanStd(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty MeanStd should be 0,0")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty Percentile should be NaN")
	}
}

func TestMeanStdMatchesNaive(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormalScaled(3, 2)
	}
	m, s := MeanStd(xs)
	if math.Abs(m-Mean(xs)) > 1e-12 {
		t.Fatalf("MeanStd mean %v vs %v", m, Mean(xs))
	}
	if math.Abs(s-StdDev(xs)) > 1e-12 {
		t.Fatalf("MeanStd sd %v vs %v", s, StdDev(xs))
	}
}

func TestQuickMeanStdAgree(t *testing.T) {
	f := func(a [16]float64) bool {
		for _, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e10 {
				return true
			}
		}
		m, s := MeanStd(a[:])
		return math.Abs(m-Mean(a[:])) < 1e-6 && math.Abs(s-StdDev(a[:])) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3*v - 2
	}
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 1e-12 || math.Abs(fit.Intercept+2) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 1-1e-12 {
		t.Fatalf("R² = %v on exact data", fit.R2)
	}
	if fit.N != 5 {
		t.Fatalf("N = %d", fit.N)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := rng.New(2)
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := r.Uniform(0, 10)
		x = append(x, xi)
		y = append(y, 2*xi+1+r.NormalScaled(0, 0.1))
	}
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 0.05 || math.Abs(fit.Intercept-1) > 0.1 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R² = %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Fatal("no error on single point")
	}
	if _, err := FitLine([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("no error on constant x")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("no error on length mismatch")
	}
}

func TestFitLineWeightedMatchesUnweightedOnUniformWeights(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2.1, 3.9, 6.2, 7.8}
	w := []float64{1, 1, 1, 1}
	a, _ := FitLine(x, y)
	b, err := FitLineWeighted(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Slope-b.Slope) > 1e-9 || math.Abs(a.Intercept-b.Intercept) > 1e-9 {
		t.Fatalf("uniform-weight fit differs: %+v vs %+v", a, b)
	}
}

func TestFitLineWeightedFavorsHighWeightPoints(t *testing.T) {
	// Two clusters on different lines; weights select the first.
	x := []float64{1, 2, 10, 20}
	y := []float64{1, 2, 100, 200} // second cluster slope 10
	w := []float64{1e6, 1e6, 1e-6, 1e-6}
	fit, err := FitLineWeighted(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-1) > 0.01 {
		t.Fatalf("weighted slope = %v, want ≈ 1", fit.Slope)
	}
}

func TestFitLineWeightedErrors(t *testing.T) {
	if _, err := FitLineWeighted([]float64{1, 2}, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("no error on weight length mismatch")
	}
	if _, err := FitLineWeighted([]float64{1, 1}, []float64{1, 2}, []float64{1, 1}); err == nil {
		t.Fatal("no error on constant x")
	}
}

func TestRelativeErrors(t *testing.T) {
	fit := LinearFit{Slope: 2, Intercept: 0}
	errs := fit.RelativeErrors([]float64{1, 2}, []float64{2, 5})
	if errs[0] != 0 {
		t.Fatalf("exact point err = %v", errs[0])
	}
	if math.Abs(errs[1]-0.2) > 1e-12 { // predict 4 vs actual 5
		t.Fatalf("err = %v, want 0.2", errs[1])
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Fatal("Max/Min wrong")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Fatal("empty Max/Min should be ∓Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("median = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 1 || xs[4] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

// Property: the OLS fit is invariant to shifting y by a constant
// (slope unchanged, intercept shifts).
func TestQuickFitShiftInvariance(t *testing.T) {
	f := func(pts [8]float64, c int8) bool {
		x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		y := make([]float64, 8)
		for i := range y {
			v := pts[i]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
			y[i] = v
		}
		a, err := FitLine(x, y)
		if err != nil {
			return true
		}
		for i := range y {
			y[i] += float64(c)
		}
		b, err := FitLine(x, y)
		if err != nil {
			return true
		}
		return math.Abs(a.Slope-b.Slope) < 1e-6 &&
			math.Abs((b.Intercept-a.Intercept)-float64(c)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
