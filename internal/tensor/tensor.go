// Package tensor implements dense float64 tensors in NCHW layout plus
// the handful of shape and arithmetic helpers the inference and training
// engines need. It deliberately avoids cleverness (no views with
// strides, no lazy evaluation): every tensor owns a contiguous backing
// slice, which keeps the error-injection code in internal/profile easy
// to reason about.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense float64 array with an explicit shape. Data is laid
// out row-major with the last dimension contiguous (NCHW for 4-D
// activations: index = ((n*C+c)*H+h)*W + w).
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is not
// copied; it panics if the element count does not match.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element
// counts (shape metadata is kept).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	return FromSlice(t.Data, shape...)
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// At4 returns the element at (n, c, h, w) of a 4-D tensor.
func (t *Tensor) At4(n, c, h, w int) float64 {
	N, C, H, W := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	_ = N
	return t.Data[((n*C+c)*H+h)*W+w]
}

// Set4 sets the element at (n, c, h, w) of a 4-D tensor.
func (t *Tensor) Set4(n, c, h, w int, v float64) {
	C, H, W := t.Shape[1], t.Shape[2], t.Shape[3]
	t.Data[((n*C+c)*H+h)*W+w] = v
}

// Add accumulates src into t element-wise.
func (t *Tensor) Add(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: Add size mismatch")
	}
	for i, v := range src.Data {
		t.Data[i] += v
	}
}

// Sub subtracts src from t element-wise.
func (t *Tensor) Sub(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: Sub size mismatch")
	}
	for i, v := range src.Data {
		t.Data[i] -= v
	}
}

// Scale multiplies every element by k.
func (t *Tensor) Scale(k float64) {
	for i := range t.Data {
		t.Data[i] *= k
	}
}

// AxpyInto writes a*x + y into dst (all same length).
func AxpyInto(dst *Tensor, a float64, x, y *Tensor) {
	if len(dst.Data) != len(x.Data) || len(x.Data) != len(y.Data) {
		panic("tensor: AxpyInto size mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = a*x.Data[i] + y.Data[i]
	}
}

// MaxAbs returns max_i |t_i|; 0 for an empty tensor.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Dot returns the inner product of two equally sized tensors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: Dot size mismatch")
	}
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// String renders a compact description (shape plus a data prefix) for
// debugging; it never prints more than eight elements.
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.Shape, t.Data[:n])
}
