package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapesAndZero(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New tensor not zeroed")
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative dim")
		}
	}()
	New(2, -1)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	x.Data[0] = 9
	if d[0] != 9 {
		t.Fatal("FromSlice copied data")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 7
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	if !SameShape(x, y) {
		t.Fatal("Clone changed shape")
	}
}

func TestAt4Set4Roundtrip(t *testing.T) {
	x := New(2, 3, 4, 5)
	v := 0.0
	for n := 0; n < 2; n++ {
		for c := 0; c < 3; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 5; w++ {
					x.Set4(n, c, h, w, v)
					v++
				}
			}
		}
	}
	// NCHW layout: data must simply count up.
	for i, d := range x.Data {
		if d != float64(i) {
			t.Fatalf("layout broken at %d: %v", i, d)
		}
	}
	if got := x.At4(1, 2, 3, 4); got != float64(x.Len()-1) {
		t.Fatalf("At4 last = %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := FromSlice([]float64{10, 20, 30}, 3)
	x.Add(y)
	if x.Data[2] != 33 {
		t.Fatalf("Add: %v", x.Data)
	}
	x.Sub(y)
	if x.Data[2] != 3 {
		t.Fatalf("Sub: %v", x.Data)
	}
	x.Scale(2)
	if x.Data[0] != 2 {
		t.Fatalf("Scale: %v", x.Data)
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Add size mismatch")
		}
	}()
	New(2).Add(New(3))
}

func TestAxpyInto(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{10, 10}, 2)
	dst := New(2)
	AxpyInto(dst, 3, x, y)
	if dst.Data[0] != 13 || dst.Data[1] != 16 {
		t.Fatalf("AxpyInto: %v", dst.Data)
	}
}

func TestMaxAbsAndSum(t *testing.T) {
	x := FromSlice([]float64{-4, 1, 3}, 3)
	if x.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if New(0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs != 0")
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
}

func TestReshapeSharesAndChecks(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 5
	if x.Data[0] != 5 {
		t.Fatal("Reshape copied")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad reshape")
		}
	}()
	x.Reshape(5, 5)
}

func TestCopyFromAndFill(t *testing.T) {
	x := New(3)
	y := FromSlice([]float64{1, 2, 3}, 3)
	x.CopyFrom(y)
	if x.Data[1] != 2 {
		t.Fatal("CopyFrom failed")
	}
	x.Fill(7)
	if x.Data[0] != 7 || x.Data[2] != 7 {
		t.Fatal("Fill failed")
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestSameShape(t *testing.T) {
	if SameShape(New(2, 3), New(3, 2)) {
		t.Fatal("SameShape confused transposed shapes")
	}
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Fatal("SameShape rejected equal shapes")
	}
	if SameShape(New(2), New(2, 1)) {
		t.Fatal("SameShape ignored rank")
	}
}

func TestStringTruncates(t *testing.T) {
	s := New(100).String()
	if len(s) > 200 {
		t.Fatalf("String too long: %d chars", len(s))
	}
}

// Property: Dot is symmetric and linear in its first argument.
func TestQuickDotProperties(t *testing.T) {
	f := func(a, b [8]float64, k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return true
		}
		for i := range a {
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) ||
				math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		x := FromSlice(append([]float64{}, a[:]...), 8)
		y := FromSlice(append([]float64{}, b[:]...), 8)
		d1 := Dot(x, y)
		d2 := Dot(y, x)
		if d1 != d2 {
			return false
		}
		x.Scale(2)
		return approxEq(Dot(x, y), 2*d1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Sub is the identity.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b [6]float64) bool {
		x := FromSlice(append([]float64{}, a[:]...), 6)
		y := FromSlice(append([]float64{}, b[:]...), 6)
		orig := x.Clone()
		x.Add(y)
		x.Sub(y)
		for i := range x.Data {
			if !approxEq(x.Data[i], orig.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func approxEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
