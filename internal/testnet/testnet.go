// Package testnet provides small deterministic fixtures shared by the
// test suites: a tiny trained CNN (trains in well under a second) and
// its dataset, so pipeline tests do not need the full model zoo.
package testnet

import (
	"sync"

	"mupod/internal/dataset"
	"mupod/internal/nn"
	"mupod/internal/rng"
	"mupod/internal/train"
)

// Seed keeps the fixtures reproducible and independent of the zoo.
const Seed uint64 = 424242

var (
	once  sync.Once
	net   *nn.Network
	trSet *dataset.Dataset
	teSet *dataset.Dataset
)

// Build constructs the untrained 3-conv + FC network on 8×8 inputs.
func Build() *nn.Network {
	r := rng.New(Seed)
	n := nn.NewNetwork("testnet", []int{3, 8, 8}, dataset.NumClasses)
	c1 := nn.NewConv2D(3, 8, 3, 1, 1)
	c1.InitHe(r, 1)
	x := n.AddNode("conv1", c1, 0)
	x = n.AddNode("relu1", nn.ReLU{}, x)
	x = n.AddNode("pool1", nn.NewMaxPool2D(2, 2), x)
	c2 := nn.NewConv2D(8, 12, 3, 1, 1)
	c2.InitHe(r, 1)
	x = n.AddNode("conv2", c2, x)
	x = n.AddNode("relu2", nn.ReLU{}, x)
	x = n.AddNode("pool2", nn.NewMaxPool2D(2, 2), x)
	c3 := nn.NewConv2D(12, 12, 3, 1, 1)
	c3.InitHe(r, 1)
	x = n.AddNode("conv3", c3, x)
	x = n.AddNode("relu3", nn.ReLU{}, x)
	x = n.AddNode("flatten", nn.Flatten{}, x)
	fc := nn.NewDense(12*2*2, dataset.NumClasses)
	fc.InitHe(r, 1)
	n.AddNode("fc", fc, x)
	return n
}

// Trained returns the shared trained network and its train/test splits.
// The network is trained once per process; callers MUST NOT mutate its
// parameters (use Build for a private copy).
func Trained() (*nn.Network, *dataset.Dataset, *dataset.Dataset) {
	once.Do(func() {
		trSet, teSet = dataset.Generate(dataset.Config{
			H: 8, W: 8, Train: 300, Test: 240, Seed: Seed,
		})
		net = Build()
		train.Run(net, trSet, train.Config{
			Optimizer: train.Adam, LR: 0.005, Steps: 150, BatchSize: 8, Seed: Seed,
		})
	})
	return net, trSet, teSet
}
