package testnet

import (
	"testing"

	"mupod/internal/train"
)

func TestTrainedFixtureQuality(t *testing.T) {
	net, tr, te := Trained()
	if net == nil || tr == nil || te == nil {
		t.Fatal("fixture incomplete")
	}
	if acc := train.Accuracy(net, te, 32); acc < 0.7 {
		t.Fatalf("fixture test accuracy %v < 0.7 — downstream suites rely on a trained net", acc)
	}
	if got := len(net.AnalyzableNodes()); got != 4 {
		t.Fatalf("fixture has %d analyzable layers, suites assume 4", got)
	}
}

func TestTrainedIsMemoized(t *testing.T) {
	a, _, _ := Trained()
	b, _, _ := Trained()
	if a != b {
		t.Fatal("Trained must return the shared instance")
	}
}

func TestBuildReturnsFreshCopies(t *testing.T) {
	a := Build()
	b := Build()
	if a == b {
		t.Fatal("Build returned a shared instance")
	}
	// Same deterministic init…
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
				t.Fatal("Build is not deterministic")
			}
		}
	}
	// …but independent storage.
	pa[0].Value.Data[0] += 1
	if pb[0].Value.Data[0] == pa[0].Value.Data[0] {
		t.Fatal("Build instances share parameter storage")
	}
}
