package testnet

import (
	"fmt"
	"sync"

	"mupod/internal/dataset"
	"mupod/internal/nn"
	"mupod/internal/rng"
	"mupod/internal/train"
)

// Fixture is one trained zoo network with the shared data splits.
type Fixture struct {
	Name  string
	Net   *nn.Network
	Train *dataset.Dataset
	Test  *dataset.Dataset
}

// ZooNames lists the fixture networks in deterministic order. Together
// they cover every layer kind the execution engine implements — conv,
// dwconv, fc, flatten, relu, maxpool, avgpool, gap, add, concat — so a
// differential check over the zoo exercises every ForwardInto kernel.
func ZooNames() []string {
	return []string{"testnet", "dwsep", "residual", "incept"}
}

var (
	zooMu   sync.Mutex
	zooMemo = map[string]*nn.Network{}
)

// BuildZoo constructs the named untrained zoo architecture (see
// ZooNames) on the 3×8×8 input the shared dataset provides. Unlike
// ZooNet it skips training entirely — the load generator serializes
// these to netdesc and lets the daemon train them server-side.
func BuildZoo(name string) *nn.Network {
	return buildZooNet(name)
}

// buildZooNet constructs the named untrained architecture on the 3×8×8
// input the shared dataset provides.
func buildZooNet(name string) *nn.Network {
	switch name {
	case "testnet":
		return Build()
	case "dwsep":
		// Depthwise-separable stack: conv → dwconv → pointwise conv →
		// avgpool → gap. Covers dwconv, avgpool and gap.
		r := rng.New(Seed + 1)
		n := nn.NewNetwork("dwsep", []int{3, 8, 8}, dataset.NumClasses)
		c1 := nn.NewConv2D(3, 8, 3, 1, 1)
		c1.InitHe(r, 1)
		x := n.AddNode("conv1", c1, 0)
		x = n.AddNode("relu1", nn.ReLU{}, x)
		dw := nn.NewDepthwiseConv2D(8, 3, 1, 1)
		dw.InitHe(r, 1)
		x = n.AddNode("dw1", dw, x)
		x = n.AddNode("relu2", nn.ReLU{}, x)
		pw := nn.NewConv2D(8, 16, 1, 1, 0)
		pw.InitHe(r, 1)
		x = n.AddNode("pw1", pw, x)
		x = n.AddNode("relu3", nn.ReLU{}, x)
		x = n.AddNode("apool", nn.NewAvgPool2D(2, 2), x)
		x = n.AddNode("gap", nn.GlobalAvgPool{}, x)
		x = n.AddNode("flatten", nn.Flatten{}, x)
		fc := nn.NewDense(16, dataset.NumClasses)
		fc.InitHe(r, 1)
		n.AddNode("fc", fc, x)
		return n
	case "residual":
		// One residual block: the skip connection covers add.
		r := rng.New(Seed + 2)
		n := nn.NewNetwork("residual", []int{3, 8, 8}, dataset.NumClasses)
		c1 := nn.NewConv2D(3, 8, 3, 1, 1)
		c1.InitHe(r, 1)
		trunk := n.AddNode("conv1", c1, 0)
		trunk = n.AddNode("relu1", nn.ReLU{}, trunk)
		b1 := nn.NewConv2D(8, 8, 3, 1, 1)
		b1.InitHe(r, 1)
		y := n.AddNode("conv2", b1, trunk)
		y = n.AddNode("relu2", nn.ReLU{}, y)
		b2 := nn.NewConv2D(8, 8, 3, 1, 1)
		b2.InitHe(r, 1)
		y = n.AddNode("conv3", b2, y)
		x := n.AddNode("add", nn.Add{}, trunk, y)
		x = n.AddNode("relu3", nn.ReLU{}, x)
		x = n.AddNode("pool", nn.NewMaxPool2D(2, 2), x)
		x = n.AddNode("flatten", nn.Flatten{}, x)
		fc := nn.NewDense(8*4*4, dataset.NumClasses)
		fc.InitHe(r, 1)
		n.AddNode("fc", fc, x)
		return n
	case "incept":
		// Two parallel branches joined by concat, then avgpool.
		r := rng.New(Seed + 3)
		n := nn.NewNetwork("incept", []int{3, 8, 8}, dataset.NumClasses)
		c1 := nn.NewConv2D(3, 8, 3, 1, 1)
		c1.InitHe(r, 1)
		stem := n.AddNode("conv1", c1, 0)
		stem = n.AddNode("relu1", nn.ReLU{}, stem)
		bA := nn.NewConv2D(8, 4, 1, 1, 0)
		bA.InitHe(r, 1)
		a := n.AddNode("branch1x1", bA, stem)
		a = n.AddNode("relu2", nn.ReLU{}, a)
		bB := nn.NewConv2D(8, 6, 3, 1, 1)
		bB.InitHe(r, 1)
		b := n.AddNode("branch3x3", bB, stem)
		b = n.AddNode("relu3", nn.ReLU{}, b)
		x := n.AddNode("concat", nn.Concat{}, a, b)
		x = n.AddNode("pool", nn.NewAvgPool2D(2, 2), x)
		x = n.AddNode("flatten", nn.Flatten{}, x)
		fc := nn.NewDense(10*4*4, dataset.NumClasses)
		fc.InitHe(r, 1)
		n.AddNode("fc", fc, x)
		return n
	default:
		panic(fmt.Sprintf("testnet: unknown zoo fixture %q", name))
	}
}

// ZooNet returns the named trained fixture network and the shared 8×8
// train/test splits. Networks are trained once per process; callers
// MUST NOT mutate their parameters (use buildZooNet-style private
// construction via Build for "testnet" if mutation is needed). Panics
// on an unknown name.
func ZooNet(name string) (*nn.Network, *dataset.Dataset, *dataset.Dataset) {
	if name == "testnet" {
		return Trained()
	}
	_, tr, te := Trained() // also materializes the shared splits
	zooMu.Lock()
	defer zooMu.Unlock()
	net, ok := zooMemo[name]
	if !ok {
		net = buildZooNet(name)
		cfg := train.Config{
			Optimizer: train.Adam, LR: 0.005, Steps: 150, BatchSize: 8, Seed: Seed,
		}
		if name == "dwsep" {
			// The GAP bottleneck (16 features) learns slower than the
			// wide flatten heads; give it a bigger budget.
			cfg.LR, cfg.Steps = 0.01, 600
		}
		train.Run(net, tr, cfg)
		zooMemo[name] = net
	}
	return net, tr, te
}

// Zoo returns every fixture, trained, in ZooNames order.
func Zoo() []Fixture {
	names := ZooNames()
	out := make([]Fixture, 0, len(names))
	for _, name := range names {
		net, tr, te := ZooNet(name)
		out = append(out, Fixture{Name: name, Net: net, Train: tr, Test: te})
	}
	return out
}
