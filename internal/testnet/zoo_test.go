package testnet

import (
	"testing"

	"mupod/internal/nn"
)

// Every ForwardInto kernel the execution engine implements must be
// reachable through some zoo fixture, or the differential self-check
// has a blind spot.
func TestZooCoversAllLayerKinds(t *testing.T) {
	want := map[string]bool{
		"conv": false, "dwconv": false, "fc": false, "flatten": false,
		"relu": false, "maxpool": false, "avgpool": false, "gap": false,
		"add": false, "concat": false,
	}
	for _, f := range Zoo() {
		for _, node := range f.Net.Nodes {
			if node.Layer == nil { // the input placeholder node
				continue
			}
			kind := node.Layer.Kind()
			if _, ok := want[kind]; ok {
				want[kind] = true
			}
		}
	}
	for kind, seen := range want {
		if !seen {
			t.Errorf("no zoo fixture contains a %q layer", kind)
		}
	}
}

func TestZooNetsForwardAndClassify(t *testing.T) {
	for _, f := range Zoo() {
		out := f.Net.Forward(f.Test.Batch(0, 16))
		preds := nn.Argmax(out)
		if len(preds) != 16 {
			t.Fatalf("%s: %d predictions for 16 images", f.Name, len(preds))
		}
		correct := 0
		n := f.Test.Len()
		for start := 0; start < n; start += 32 {
			size := 32
			if start+size > n {
				size = n - start
			}
			for i, p := range nn.Argmax(f.Net.Forward(f.Test.Batch(start, size))) {
				if p == f.Test.Labels[start+i] {
					correct++
				}
			}
		}
		if acc := float64(correct) / float64(n); acc < 0.5 {
			t.Errorf("%s: trained fixture accuracy %.2f (should beat chance comfortably)", f.Name, acc)
		}
	}
}

func TestZooDeterministic(t *testing.T) {
	net, _, te := ZooNet("dwsep")
	a := nn.Argmax(net.Forward(te.Batch(0, 8)))
	b := nn.Argmax(net.Forward(te.Batch(0, 8)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("repeated forward passes disagree")
		}
	}
	if _, _, third := ZooNet("dwsep"); third != te {
		t.Fatal("ZooNet must memoize the shared splits")
	}
}
