// Package train is the SGD training substrate. The paper uses
// pretrained Caffe Model Zoo networks; offline and in pure Go we must
// produce "learned weights" ourselves (DESIGN.md §2), so this package
// implements reverse-mode differentiation over the nn DAG plus a plain
// SGD-with-momentum loop with cosine learning-rate decay — enough to
// train the scaled-down zoo architectures to non-trivial accuracy on
// the synthetic dataset.
package train

import (
	"fmt"
	"math"

	"mupod/internal/dataset"
	"mupod/internal/nn"
	"mupod/internal/rng"
	"mupod/internal/tensor"
)

// Optimizer selects the update rule.
type Optimizer int

// Supported optimizers. Adam is the default: the zoo's narrow,
// normalization-free networks plateau under plain SGD but train
// reliably under Adam.
const (
	Adam Optimizer = iota
	SGD
)

// Config controls a training run.
type Config struct {
	Optimizer   Optimizer
	LR          float64 // peak learning rate (default 0.01 Adam, 0.05 SGD)
	Momentum    float64 // SGD momentum (default 0.9)
	WeightDecay float64 // L2 penalty (default 1e-4)
	BatchSize   int     // default 16
	Steps       int     // number of optimizer steps (default 300)
	Seed        uint64  // batch sampling seed
	ClipNorm    float64 // global gradient-norm clip; 0 disables (default 5)
	Verbose     bool    // print progress every ~10% of steps
}

func (c Config) withDefaults() Config {
	if c.LR == 0 {
		if c.Optimizer == Adam {
			c.LR = 0.01
		} else {
			c.LR = 0.05
		}
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 1e-4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Steps == 0 {
		c.Steps = 300
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	return c
}

// History records the loss trajectory of a run.
type History struct {
	Losses    []float64 // per-step minibatch loss
	FinalLoss float64
}

// SoftmaxCrossEntropy returns the mean cross-entropy loss of logits
// [N, C] against labels, and the gradient with respect to the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	N, C := logits.Shape[0], logits.Shape[1]
	if len(labels) != N {
		panic(fmt.Sprintf("train: %d labels for batch of %d", len(labels), N))
	}
	probs := nn.Softmax(logits)
	grad := tensor.New(N, C)
	loss := 0.0
	invN := 1 / float64(N)
	for n := 0; n < N; n++ {
		p := probs.Data[n*C+labels[n]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		for c := 0; c < C; c++ {
			g := probs.Data[n*C+c]
			if c == labels[n] {
				g -= 1
			}
			grad.Data[n*C+c] = g * invN
		}
	}
	return loss * invN, grad
}

// Backward pushes gradLogits back through the network DAG, accumulating
// parameter gradients, and returns the gradient at the input node.
func Backward(net *nn.Network, acts []*tensor.Tensor, gradLogits *tensor.Tensor) *tensor.Tensor {
	grads := make([]*tensor.Tensor, len(net.Nodes))
	grads[len(net.Nodes)-1] = gradLogits
	for id := len(net.Nodes) - 1; id >= 1; id-- {
		if grads[id] == nil {
			continue
		}
		nd := net.Nodes[id]
		ins := make([]*tensor.Tensor, len(nd.Inputs))
		for i, in := range nd.Inputs {
			ins[i] = acts[in]
		}
		gIns := nd.Layer.Backward(ins, acts[id], grads[id])
		for i, in := range nd.Inputs {
			if grads[in] == nil {
				grads[in] = gIns[i]
			} else {
				grads[in].Add(gIns[i])
			}
		}
		grads[id] = nil // free as we go
	}
	return grads[0]
}

// Run trains net on ds with SGD + momentum and cosine LR decay.
func Run(net *nn.Network, ds *dataset.Dataset, cfg Config) History {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed ^ 0x7261696e)
	params := net.Params()
	// First/second moment buffers: velocity doubles as Adam's m.
	velocity := make([]*tensor.Tensor, len(params))
	second := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		velocity[i] = tensor.New(p.Value.Shape...)
		second[i] = tensor.New(p.Value.Shape...)
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	var hist History
	labels := make([]int, cfg.BatchSize)
	batch := tensor.New(cfg.BatchSize, ds.C, ds.H, ds.W)
	stride := ds.C * ds.H * ds.W

	for step := 0; step < cfg.Steps; step++ {
		// Sample a minibatch with replacement.
		for b := 0; b < cfg.BatchSize; b++ {
			idx := r.Intn(ds.Len())
			labels[b] = ds.Labels[idx]
			copy(batch.Data[b*stride:(b+1)*stride], ds.Images.Data[idx*stride:(idx+1)*stride])
		}

		net.ZeroGrads()
		acts := net.ForwardAll(batch)
		loss, gradLogits := SoftmaxCrossEntropy(acts[len(acts)-1], labels)
		Backward(net, acts, gradLogits)
		hist.Losses = append(hist.Losses, loss)

		// Global gradient-norm clipping stabilizes the deepest nets.
		if cfg.ClipNorm > 0 {
			var norm2 float64
			for _, p := range params {
				for _, g := range p.Grad.Data {
					norm2 += g * g
				}
			}
			if norm := math.Sqrt(norm2); norm > cfg.ClipNorm {
				scale := cfg.ClipNorm / norm
				for _, p := range params {
					p.Grad.Scale(scale)
				}
			}
		}

		// Linear warmup over the first 10% of steps, then cosine decay
		// to 1% of the peak LR.
		frac := float64(step) / float64(cfg.Steps)
		var lr float64
		if frac < 0.1 {
			lr = cfg.LR * (0.1 + 0.9*frac/0.1)
		} else {
			d := (frac - 0.1) / 0.9
			lr = cfg.LR * (0.01 + 0.99*0.5*(1+math.Cos(math.Pi*d)))
		}

		switch cfg.Optimizer {
		case Adam:
			t := float64(step + 1)
			bc1 := 1 - math.Pow(beta1, t)
			bc2 := 1 - math.Pow(beta2, t)
			for i, p := range params {
				m, v := velocity[i], second[i]
				for j := range p.Value.Data {
					g := p.Grad.Data[j] + cfg.WeightDecay*p.Value.Data[j]
					m.Data[j] = beta1*m.Data[j] + (1-beta1)*g
					v.Data[j] = beta2*v.Data[j] + (1-beta2)*g*g
					mhat := m.Data[j] / bc1
					vhat := v.Data[j] / bc2
					p.Value.Data[j] -= lr * mhat / (math.Sqrt(vhat) + eps)
				}
			}
		case SGD:
			for i, p := range params {
				v := velocity[i]
				for j := range p.Value.Data {
					g := p.Grad.Data[j] + cfg.WeightDecay*p.Value.Data[j]
					v.Data[j] = cfg.Momentum*v.Data[j] - lr*g
					p.Value.Data[j] += v.Data[j]
				}
			}
		}

		if cfg.Verbose && (step%maxInt(1, cfg.Steps/10) == 0 || step == cfg.Steps-1) {
			fmt.Printf("train %s step %4d/%d loss %.4f lr %.4f\n", net.Name, step, cfg.Steps, loss, lr)
		}
	}
	if len(hist.Losses) > 0 {
		hist.FinalLoss = hist.Losses[len(hist.Losses)-1]
	}
	return hist
}

// Accuracy computes exact top-1 accuracy of net over ds using the given
// batch size.
func Accuracy(net *nn.Network, ds *dataset.Dataset, batchSize int) float64 {
	if batchSize <= 0 {
		batchSize = 32
	}
	correct := 0
	for start := 0; start < ds.Len(); start += batchSize {
		n := batchSize
		if start+n > ds.Len() {
			n = ds.Len() - start
		}
		logits := net.Forward(ds.Batch(start, n))
		preds := nn.Argmax(logits)
		for i, p := range preds {
			if p == ds.Labels[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
