package train

import (
	"math"
	"testing"

	"mupod/internal/dataset"
	"mupod/internal/nn"
	"mupod/internal/rng"
	"mupod/internal/tensor"
)

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln 4.
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient rows sum to zero.
	for n := 0; n < 2; n++ {
		sum := 0.0
		for c := 0; c < 4; c++ {
			sum += grad.Data[n*4+c]
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("grad row %d sums to %v", n, sum)
		}
	}
	// True-class entry is negative, others positive.
	if grad.Data[0] >= 0 || grad.Data[1] <= 0 {
		t.Fatalf("grad signs wrong: %v", grad.Data[:4])
	}
}

func TestSoftmaxCrossEntropyGradientNumerically(t *testing.T) {
	r := rng.New(1)
	logits := tensor.New(3, 5)
	for i := range logits.Data {
		logits.Data[i] = r.Uniform(-2, 2)
	}
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-6 {
			t.Fatalf("grad[%d] = %v, numerical %v", i, grad.Data[i], num)
		}
	}
}

func TestSoftmaxCrossEntropyPanicsOnLabelMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(2, 3), []int{0})
}

func TestBackwardThroughNetworkMatchesNumerical(t *testing.T) {
	// End-to-end finite-difference check of Backward on a small net.
	r := rng.New(2)
	net := nn.NewNetwork("t", []int{1, 4, 4}, 3)
	c := nn.NewConv2D(1, 2, 3, 1, 1)
	c.InitHe(r, 1)
	x := net.AddNode("conv", c, 0)
	x = net.AddNode("relu", nn.ReLU{}, x)
	x = net.AddNode("flatten", nn.Flatten{}, x)
	fc := nn.NewDense(32, 3)
	fc.InitHe(r, 1)
	net.AddNode("fc", fc, x)

	in := tensor.New(2, 1, 4, 4)
	for i := range in.Data {
		in.Data[i] = r.Uniform(-1, 1)
	}
	labels := []int{0, 2}

	lossOf := func() float64 {
		l, _ := SoftmaxCrossEntropy(net.Forward(in), labels)
		return l
	}

	net.ZeroGrads()
	acts := net.ForwardAll(in)
	_, g := SoftmaxCrossEntropy(acts[len(acts)-1], labels)
	Backward(net, acts, g)

	const eps = 1e-6
	for _, p := range net.Params() {
		for j := 0; j < p.Value.Len(); j += 7 { // sample every 7th weight
			orig := p.Value.Data[j]
			p.Value.Data[j] = orig + eps
			lp := lossOf()
			p.Value.Data[j] = orig - eps
			lm := lossOf()
			p.Value.Data[j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad.Data[j]) > 1e-5 {
				t.Fatalf("%s[%d]: analytic %v vs numerical %v", p.Name, j, p.Grad.Data[j], num)
			}
		}
	}
}

func tinyProblem(seed uint64) (*nn.Network, *dataset.Dataset) {
	tr, _ := dataset.Generate(dataset.Config{H: 8, W: 8, Train: 80, Test: 0, Seed: seed})
	r := rng.New(seed)
	net := nn.NewNetwork("tiny", []int{3, 8, 8}, dataset.NumClasses)
	c := nn.NewConv2D(3, 6, 3, 2, 1)
	c.InitHe(r, 1)
	x := net.AddNode("conv", c, 0)
	x = net.AddNode("relu", nn.ReLU{}, x)
	x = net.AddNode("flatten", nn.Flatten{}, x)
	fc := nn.NewDense(6*4*4, dataset.NumClasses)
	fc.InitHe(r, 1)
	net.AddNode("fc", fc, x)
	return net, tr
}

func TestRunReducesLossAdam(t *testing.T) {
	net, tr := tinyProblem(3)
	h := Run(net, tr, Config{Optimizer: Adam, Steps: 80, BatchSize: 8, Seed: 1})
	first := h.Losses[0]
	if h.FinalLoss >= first {
		t.Fatalf("Adam did not reduce loss: %v → %v", first, h.FinalLoss)
	}
	if h.FinalLoss > 1.5 {
		t.Fatalf("final loss too high: %v", h.FinalLoss)
	}
}

func TestRunReducesLossSGD(t *testing.T) {
	net, tr := tinyProblem(4)
	h := Run(net, tr, Config{Optimizer: SGD, LR: 0.02, Steps: 80, BatchSize: 8, Seed: 1})
	if h.FinalLoss >= h.Losses[0] {
		t.Fatalf("SGD did not reduce loss: %v → %v", h.Losses[0], h.FinalLoss)
	}
}

func TestRunDeterministic(t *testing.T) {
	n1, tr := tinyProblem(5)
	n2, _ := tinyProblem(5)
	Run(n1, tr, Config{Steps: 20, BatchSize: 4, Seed: 9})
	Run(n2, tr, Config{Steps: 20, BatchSize: 4, Seed: 9})
	p1, p2 := n1.Params(), n2.Params()
	for i := range p1 {
		for j := range p1[i].Value.Data {
			if p1[i].Value.Data[j] != p2[i].Value.Data[j] {
				t.Fatal("training is not deterministic")
			}
		}
	}
}

func TestAccuracyImprovesWithTraining(t *testing.T) {
	net, tr := tinyProblem(6)
	before := Accuracy(net, tr, 16)
	Run(net, tr, Config{Optimizer: Adam, Steps: 120, BatchSize: 8, Seed: 2})
	after := Accuracy(net, tr, 16)
	if after <= before+0.2 {
		t.Fatalf("training accuracy %v → %v", before, after)
	}
	if after < 0.6 {
		t.Fatalf("trained accuracy only %v", after)
	}
}

func TestGradClipKicksIn(t *testing.T) {
	// With an absurdly small clip the update magnitudes shrink; just
	// check training still runs and loss stays finite.
	net, tr := tinyProblem(7)
	h := Run(net, tr, Config{Steps: 10, BatchSize: 4, ClipNorm: 1e-6, Seed: 1})
	for _, l := range h.Losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatal("loss diverged with tight clipping")
		}
	}
}

func TestHistoryLength(t *testing.T) {
	net, tr := tinyProblem(8)
	h := Run(net, tr, Config{Steps: 15, BatchSize: 4, Seed: 1})
	if len(h.Losses) != 15 {
		t.Fatalf("history has %d entries", len(h.Losses))
	}
}
