// Package weights extends the paper's method from activations to
// WEIGHTS at layer granularity. Eq. 2 of the paper is symmetric in the
// two operands of the dot product (δ_y ≈ Σ x_i·δ_wi + Σ w_i·δ_xi), so
// the same cross-layer postulate applies to weight rounding noise:
//
//	Δ_WK ≈ λw_K·σ_{Y_K→Ł} + θw_K
//
// with constants measurable by injecting uniform noise into layer K's
// weights and regressing, exactly like internal/profile does for
// inputs. Sec. V-E of the paper appends a UNIFORM weight bitwidth
// search (as Stripes/Loom do); this package is the natural extension
// the paper leaves open: a JOINT per-layer decomposition of one output
// error budget across 2Ł noise sources (Ł activation + Ł weight),
// solved by the same simplex optimizer.
package weights

import (
	"context"
	"fmt"
	"math"

	"mupod/internal/core"
	"mupod/internal/dataset"
	"mupod/internal/exec"
	"mupod/internal/fixedpoint"
	"mupod/internal/kernels"
	"mupod/internal/nn"
	"mupod/internal/profile"
	"mupod/internal/rng"
	"mupod/internal/search"
	"mupod/internal/stats"
	"mupod/internal/tensor"
)

// LayerWeightProfile is the fitted weight-noise model of one layer.
type LayerWeightProfile struct {
	NodeID int
	Name   string

	Lambda, Theta  float64
	R2             float64
	MaxRelErr      float64
	Deltas, Sigmas []float64

	// MaxAbs is max |w| (sets the integer bits of the weight format);
	// Params is the number of weight scalars (the storage ρ).
	MaxAbs  float64
	IntBits int
	Params  int
	MACs    int
}

// DeltaFor evaluates Δ_WK = λw·σ·√ξ + θw.
func (lp *LayerWeightProfile) DeltaFor(sigmaYL, xi float64) float64 {
	return lp.Lambda*sigmaYL*math.Sqrt(xi) + lp.Theta
}

// Profile holds the weight-noise model of every analyzable layer.
type Profile struct {
	NetName string
	Layers  []LayerWeightProfile
}

// NumLayers returns Ł.
func (p *Profile) NumLayers() int { return len(p.Layers) }

// weightTensor returns the weight tensor of a dot-product layer (nil
// for layers without one).
func weightTensor(l nn.Layer) *tensor.Tensor {
	switch t := l.(type) {
	case *nn.Conv2D:
		return t.W
	case *nn.DepthwiseConv2D:
		return t.W
	case *nn.Dense:
		return t.W
	default:
		return nil
	}
}

// Config reuses the activation profiler's tunables.
type Config = profile.Config

// Run profiles the weight-noise propagation of every analyzable layer.
// The network's weights are perturbed in place during measurement and
// restored before returning.
func Run(net *nn.Network, ds *dataset.Dataset, cfg Config) (*Profile, error) {
	return RunContext(context.Background(), net, ds, cfg)
}

// RunContext is Run with cancellation. Unlike the activation profiler,
// the replay sweep stays SEQUENTIAL regardless of cfg.Workers: each
// measurement mutates the network's weight tensors in place, so
// concurrent replays against the shared network would race. The sweep
// still runs through one exec.Session, so the replay hot path reuses
// pooled activation buffers instead of allocating per call.
func RunContext(ctx context.Context, net *nn.Network, ds *dataset.Dataset, cfg Config) (*Profile, error) {
	if cfg.Images == 0 {
		cfg.Images = 30
	}
	if cfg.Points == 0 {
		cfg.Points = 12
	}
	if cfg.DeltaLoFrac == 0 {
		cfg.DeltaLoFrac = 1.0 / 512
	}
	if cfg.DeltaHiFrac == 0 {
		cfg.DeltaHiFrac = 1.0 / 16
	}
	if cfg.TargetSamples == 0 {
		cfg.TargetSamples = 8192
	}
	if ds.Len() < cfg.Images {
		return nil, fmt.Errorf("weights: dataset has %d images, config needs %d", ds.Len(), cfg.Images)
	}
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, fmt.Errorf("weights: %w", err)
	}
	batch := ds.Batch(0, cfg.Images)
	acts := net.ForwardAllOn(kernels.MustNew(cfg.Kernel), batch)
	exact := acts[len(acts)-1]
	sess := exec.NewSessionPolicy(exec.NewPlan(net), cfg.Kernel)

	p := &Profile{NetName: net.Name}
	for _, nodeID := range net.AnalyzableNodes() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("weights: %w", err)
		}
		lp, err := profileLayer(net, sess, acts, exact, nodeID, cfg)
		if err != nil {
			return nil, fmt.Errorf("weights: layer %s: %w", net.Nodes[nodeID].Name, err)
		}
		p.Layers = append(p.Layers, lp)
	}
	return p, nil
}

func profileLayer(net *nn.Network, sess *exec.Session, acts []*tensor.Tensor, exact *tensor.Tensor, nodeID int, cfg Config) (LayerWeightProfile, error) {
	nd := net.Nodes[nodeID]
	w := weightTensor(nd.Layer)
	if w == nil {
		return LayerWeightProfile{}, fmt.Errorf("no weight tensor")
	}
	maxAbs := w.MaxAbs()
	lp := LayerWeightProfile{
		NodeID:  nodeID,
		Name:    nd.Name,
		MaxAbs:  maxAbs,
		IntBits: fixedpoint.IntBitsForRange(maxAbs),
		Params:  w.Len(),
		MACs:    net.MACCount(nodeID),
	}
	if maxAbs == 0 {
		return lp, fmt.Errorf("weights are all zero")
	}

	saved := append([]float64(nil), w.Data...)
	defer copy(w.Data, saved)

	// Weight noise is one realization shared by every image, so the
	// output-error sample size per replay is (images × logits); pool
	// several independent realizations per point like the activation
	// profiler does.
	repeats := (cfg.TargetSamples + exact.Len() - 1) / exact.Len()
	if repeats < 2 {
		repeats = 2
	}
	if repeats > 12 {
		repeats = 12
	}

	base := rng.New(cfg.Seed ^ uint64(nodeID)*0xb5297a4d ^ 0x77)
	noop := func(*tensor.Tensor) {}
	diff := make([]float64, 0, exact.Len()*repeats)
	lo, hi := cfg.DeltaLoFrac*maxAbs, cfg.DeltaHiFrac*maxAbs
	for pt := 0; pt < cfg.Points; pt++ {
		frac := 0.0
		if cfg.Points > 1 {
			frac = float64(pt) / float64(cfg.Points-1)
		}
		delta := lo * math.Pow(hi/lo, frac)
		diff = diff[:0]
		for rep := 0; rep < repeats; rep++ {
			r := base.Split()
			for i := range w.Data {
				w.Data[i] = saved[i] + r.Uniform(-delta, delta)
			}
			out := sess.Replay(acts, nodeID, noop)
			for i := range out.Data {
				diff = append(diff, out.Data[i]-exact.Data[i])
			}
		}
		copy(w.Data, saved)
		_, sd := stats.MeanStd(diff)
		lp.Deltas = append(lp.Deltas, delta)
		lp.Sigmas = append(lp.Sigmas, sd)
	}

	wts := make([]float64, len(lp.Deltas))
	for i, d := range lp.Deltas {
		wts[i] = 1 / (d * d)
	}
	fit, err := stats.FitLineWeighted(lp.Sigmas, lp.Deltas, wts)
	if err != nil {
		return lp, err
	}
	lp.Lambda, lp.Theta, lp.R2 = fit.Slope, fit.Intercept, fit.R2
	lp.MaxRelErr = stats.Max(fit.RelativeErrors(lp.Sigmas, lp.Deltas))
	if lp.Lambda <= 0 {
		return lp, fmt.Errorf("non-positive λw=%.4g (R²=%.3f)", lp.Lambda, lp.R2)
	}
	return lp, nil
}

// LayerWeightAlloc is one layer's weight format assignment.
type LayerWeightAlloc struct {
	NodeID int
	Name   string
	Xi     float64
	Delta  float64
	Format fixedpoint.Format
	Bits   int
	Params int
	MACs   int
}

// Allocation assigns a weight format to every analyzable layer.
type Allocation struct {
	NetName string
	SigmaYL float64
	Layers  []LayerWeightAlloc
}

// Bits returns the per-layer weight widths.
func (a *Allocation) Bits() []int {
	out := make([]int, len(a.Layers))
	for i := range a.Layers {
		out[i] = a.Layers[i].Bits
	}
	return out
}

// StorageBits is Σ params_K · bits_K — the weight memory footprint.
func (a *Allocation) StorageBits() int64 {
	var total int64
	for i := range a.Layers {
		total += int64(a.Layers[i].Params) * int64(a.Layers[i].Bits)
	}
	return total
}

// EffectiveStorageBits is the storage-weighted mean width.
func (a *Allocation) EffectiveStorageBits() float64 {
	var num, den float64
	for i := range a.Layers {
		num += float64(a.Layers[i].Params) * float64(a.Layers[i].Bits)
		den += float64(a.Layers[i].Params)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Apply quantizes the network's weights to the allocation's formats and
// returns a restore function.
func (a *Allocation) Apply(net *nn.Network) (restore func()) {
	var saved [][]float64
	var tensors []*tensor.Tensor
	for _, la := range a.Layers {
		w := weightTensor(net.Nodes[la.NodeID].Layer)
		if w == nil {
			continue
		}
		saved = append(saved, append([]float64(nil), w.Data...))
		tensors = append(tensors, w)
		la.Format.QuantizeSlice(w.Data, w.Data)
	}
	return func() {
		for i, w := range tensors {
			copy(w.Data, saved[i])
		}
	}
}

// JointConfig tunes the joint activation+weight allocation.
type JointConfig struct {
	// ActRho / WeightRho weight the two groups in the objective; nil
	// defaults to #Input for activations and #Params for weights
	// (bandwidth + storage). Lengths must equal Ł when set.
	ActRho, WeightRho []float64
	DeltaFloor        float64
}

// JointAllocate splits ONE output-error budget σ_YŁ across 2Ł noise
// sources — every layer's activations and every layer's weights — by
// building a 2Ł-dimensional Eq. 8 objective and solving it with the
// same Newton-KKT simplex solver. It returns the activation allocation
// and the weight allocation.
func JointAllocate(aprof *profile.Profile, wprof *Profile, sigmaYL float64, cfg JointConfig) (*core.Allocation, *Allocation, error) {
	L := aprof.NumLayers()
	if wprof.NumLayers() != L {
		return nil, nil, fmt.Errorf("weights: %d activation layers vs %d weight layers", L, wprof.NumLayers())
	}
	actRho := cfg.ActRho
	if actRho == nil {
		actRho = make([]float64, L)
		for k := range aprof.Layers {
			actRho[k] = float64(aprof.Layers[k].Inputs)
		}
	}
	weightRho := cfg.WeightRho
	if weightRho == nil {
		weightRho = make([]float64, L)
		for k := range wprof.Layers {
			weightRho[k] = float64(wprof.Layers[k].Params)
		}
	}
	if len(actRho) != L || len(weightRho) != L {
		return nil, nil, fmt.Errorf("weights: ρ lengths %d/%d for %d layers", len(actRho), len(weightRho), L)
	}

	// Assemble the 2Ł-dimensional problem as a synthetic profile: the
	// first Ł coordinates are activations, the last Ł are weights.
	joint := &profile.Profile{NetName: aprof.NetName}
	rho := make([]float64, 0, 2*L)
	for k := range aprof.Layers {
		joint.Layers = append(joint.Layers, profile.LayerProfile{
			Lambda: aprof.Layers[k].Lambda,
			Theta:  aprof.Layers[k].Theta,
		})
		rho = append(rho, actRho[k])
	}
	for k := range wprof.Layers {
		joint.Layers = append(joint.Layers, profile.LayerProfile{
			Lambda: wprof.Layers[k].Lambda,
			Theta:  wprof.Layers[k].Theta,
		})
		rho = append(rho, weightRho[k])
	}

	xi, err := core.OptimizeXi(joint, sigmaYL, core.Config{
		Objective: core.CustomRho, Rho: rho, DeltaFloor: cfg.DeltaFloor,
	})
	if err != nil {
		return nil, nil, err
	}

	actAlloc, err := core.FromXi(aprof, sigmaYL, xi[:L], "joint_act", cfg.DeltaFloor)
	if err != nil {
		return nil, nil, err
	}
	// Activation ξ from the joint solve must be written back (FromXi
	// recomputes Δ from the activation profile with the joint ξ shares,
	// which is exactly what we want).
	wAlloc := &Allocation{NetName: wprof.NetName, SigmaYL: sigmaYL}
	floor := cfg.DeltaFloor
	if floor <= 0 {
		floor = 1.0 / (1 << 20)
	}
	for k := range wprof.Layers {
		lp := &wprof.Layers[k]
		delta := lp.DeltaFor(sigmaYL, xi[L+k])
		if delta < floor {
			delta = floor
		}
		f := fixedpoint.Format{IntBits: lp.IntBits, FracBits: fixedpoint.FracBitsForDelta(delta)}
		wAlloc.Layers = append(wAlloc.Layers, LayerWeightAlloc{
			NodeID: lp.NodeID,
			Name:   lp.Name,
			Xi:     xi[L+k],
			Delta:  delta,
			Format: f,
			Bits:   f.Width(),
			Params: lp.Params,
			MACs:   lp.MACs,
		})
	}
	return actAlloc, wAlloc, nil
}

// Validate measures real top-1 accuracy with BOTH the activation
// formats and the weight formats applied. Quantization injectors are
// stateless, so the evaluation runs on GOMAXPROCS workers with a
// bit-identical result at any worker count.
func Validate(net *nn.Network, ds *dataset.Dataset, n int, act *core.Allocation, w *Allocation) float64 {
	restore := w.Apply(net)
	defer restore()
	acc, _ := search.AccuracyStateless(context.Background(), 0, net, ds, n, 32, act.InjectionPlan())
	return acc
}
