package weights

import (
	"sync"
	"testing"

	"mupod/internal/profile"
	"mupod/internal/search"
	"mupod/internal/testnet"
)

var (
	fixOnce sync.Once
	actProf *profile.Profile
	wProf   *Profile
)

func fixtures(t *testing.T) (*profile.Profile, *Profile) {
	t.Helper()
	fixOnce.Do(func() {
		net, _, te := testnet.Trained()
		cfg := Config{Images: 16, Points: 8, Seed: 5}
		if p, err := profile.Run(net, te, cfg); err == nil {
			actProf = p
		}
		if p, err := Run(net, te, cfg); err == nil {
			wProf = p
		}
	})
	if actProf == nil || wProf == nil {
		t.Fatal("fixtures unavailable")
	}
	return actProf, wProf
}

func TestWeightProfileLinearity(t *testing.T) {
	_, wp := fixtures(t)
	if wp.NumLayers() != 4 {
		t.Fatalf("%d weight layers", wp.NumLayers())
	}
	for _, lp := range wp.Layers {
		if lp.Lambda <= 0 {
			t.Errorf("%s: λw = %v", lp.Name, lp.Lambda)
		}
		if lp.R2 < 0.8 {
			t.Errorf("%s: R² = %v — weight-noise propagation not linear", lp.Name, lp.R2)
		}
		if lp.Params <= 0 || lp.MACs <= 0 || lp.MaxAbs <= 0 {
			t.Errorf("%s: bad metadata %+v", lp.Name, lp)
		}
	}
}

func TestWeightProfileRestoresWeights(t *testing.T) {
	net, _, te := testnet.Trained()
	before := search.Accuracy(net, te, 100, 32, nil)
	if _, err := Run(net, te, Config{Images: 8, Points: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := search.Accuracy(net, te, 100, 32, nil)
	if before != after {
		t.Fatalf("profiling changed the network: %v → %v", before, after)
	}
}

func TestJointAllocateStructure(t *testing.T) {
	ap, wp := fixtures(t)
	act, w, err := JointAllocate(ap, wp, 0.8, JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(act.Layers) != ap.NumLayers() || len(w.Layers) != wp.NumLayers() {
		t.Fatalf("allocation sizes %d/%d", len(act.Layers), len(w.Layers))
	}
	// The 2Ł ξ shares must sum to 1.
	var sum float64
	for _, l := range act.Layers {
		sum += l.Xi
	}
	for _, l := range w.Layers {
		sum += l.Xi
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("Σξ over 2Ł sources = %v", sum)
	}
	for _, l := range w.Layers {
		if l.Bits < 0 || l.Format.Delta() > l.Delta {
			t.Fatalf("bad weight format: %+v", l)
		}
	}
	if w.StorageBits() <= 0 || w.EffectiveStorageBits() <= 0 {
		t.Fatal("storage accounting broken")
	}
}

func TestJointAllocateValidatesOnRealQuantization(t *testing.T) {
	net, _, te := testnet.Trained()
	ap, wp := fixtures(t)
	sr, err := search.Run(net, ap, te, search.Options{
		Scheme: search.Scheme1Uniform, RelDrop: 0.05, EvalImages: 120, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Joint split halves the budget per source; use a modest safety
	// factor as the guard loop would.
	act, w, err := JointAllocate(ap, wp, sr.SigmaYL*0.7, JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	acc := Validate(net, te, 0, act, w)
	exact := search.Accuracy(net, te, 0, 32, nil)
	if acc < exact*(1-0.05)-0.03 {
		t.Fatalf("joint quantization accuracy %v vs exact %v", acc, exact)
	}
	// Validate must restore the weights.
	if again := search.Accuracy(net, te, 0, 32, nil); again != exact {
		t.Fatal("Validate leaked quantized weights")
	}
}

func TestJointBeatsUniformWeightStorage(t *testing.T) {
	// With storage as the weight objective, the joint allocation's
	// weight footprint should not exceed a uniform assignment at the
	// max per-layer width it chose.
	ap, wp := fixtures(t)
	_, w, err := JointAllocate(ap, wp, 0.8, JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	maxBits := 0
	for _, l := range w.Layers {
		if l.Bits > maxBits {
			maxBits = l.Bits
		}
	}
	var uniform int64
	for _, l := range w.Layers {
		uniform += int64(l.Params) * int64(maxBits)
	}
	if w.StorageBits() > uniform {
		t.Fatalf("joint storage %d > uniform-at-max %d", w.StorageBits(), uniform)
	}
}

func TestApplyRestore(t *testing.T) {
	net, _, te := testnet.Trained()
	ap, wp := fixtures(t)
	_, w, err := JointAllocate(ap, wp, 0.5, JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before := search.Accuracy(net, te, 100, 32, nil)
	restore := w.Apply(net)
	restore()
	after := search.Accuracy(net, te, 100, 32, nil)
	if before != after {
		t.Fatal("Apply/restore not idempotent")
	}
}

func TestJointAllocateValidation(t *testing.T) {
	ap, wp := fixtures(t)
	bad := &Profile{Layers: wp.Layers[:1]}
	if _, _, err := JointAllocate(ap, bad, 0.5, JointConfig{}); err == nil {
		t.Fatal("no error on layer-count mismatch")
	}
	if _, _, err := JointAllocate(ap, wp, 0.5, JointConfig{ActRho: []float64{1}}); err == nil {
		t.Fatal("no error on ρ length mismatch")
	}
}

func TestRunErrorsOnTooFewImages(t *testing.T) {
	net, _, te := testnet.Trained()
	if _, err := Run(net, te, Config{Images: te.Len() + 1}); err == nil {
		t.Fatal("no error on oversized image budget")
	}
}
