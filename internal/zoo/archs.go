// Package zoo builds the eight scaled-down CNN architectures evaluated
// in the paper (Table III) and trains/caches them on the synthetic
// dataset. Each topology preserves the structure of its namesake —
// AlexNet's conv/pool chain, NiN's mlpconv stacks, GoogleNet's
// inception modules, VGG-19's deep 3×3 blocks, ResNet bottlenecks,
// SqueezeNet fire modules, MobileNet depthwise separables — and keeps
// the paper's ANALYZABLE layer counts exactly (AlexNet 5, NiN 12,
// GoogleNet 57, VGG-19 16, ResNet-50 54, ResNet-152 156, SqueezeNet 26,
// MobileNet 28), while shrinking channels and spatial sizes so the full
// pipeline runs on one CPU core.
package zoo

import (
	"fmt"

	"mupod/internal/nn"
	"mupod/internal/rng"
)

// Arch names a zoo architecture.
type Arch string

// The eight architectures of Table III.
const (
	AlexNet    Arch = "alexnet"
	NiN        Arch = "nin"
	GoogleNet  Arch = "googlenet"
	VGG19      Arch = "vgg19"
	ResNet50   Arch = "resnet50"
	ResNet152  Arch = "resnet152"
	SqueezeNet Arch = "squeezenet"
	MobileNet  Arch = "mobilenet"
)

// All lists every architecture in the order of Table III.
var All = []Arch{AlexNet, NiN, GoogleNet, VGG19, ResNet50, ResNet152, SqueezeNet, MobileNet}

// AnalyzableLayers is the layer count the paper reports per network
// (Table III column "# layers"); Build is tested against these.
var AnalyzableLayers = map[Arch]int{
	AlexNet:    5,
	NiN:        12,
	GoogleNet:  57,
	VGG19:      16,
	ResNet50:   54,
	ResNet152:  156,
	SqueezeNet: 26,
	MobileNet:  28,
}

// InputSize returns the synthetic image edge length used for the
// architecture: 16 for most, 8 for the very deep ResNets to keep
// single-core profiling affordable (DESIGN.md §5).
func InputSize(a Arch) int {
	switch a {
	case ResNet50, ResNet152:
		return 8
	default:
		return 16
	}
}

const numClasses = 10

// Build constructs the untrained network for an architecture with
// deterministic He initialization derived from seed.
func Build(a Arch, seed uint64) *nn.Network {
	r := rng.New(seed ^ uint64(len(a))<<32)
	switch a {
	case AlexNet:
		return buildAlexNet(r)
	case NiN:
		return buildNiN(r)
	case GoogleNet:
		return buildGoogleNet(r)
	case VGG19:
		return buildVGG19(r)
	case ResNet50:
		return buildResNet(r, "resnet50", []int{3, 4, 6, 3})
	case ResNet152:
		return buildResNet(r, "resnet152", []int{3, 8, 36, 3})
	case SqueezeNet:
		return buildSqueezeNet(r)
	case MobileNet:
		return buildMobileNet(r)
	default:
		panic(fmt.Sprintf("zoo: unknown architecture %q", a))
	}
}

// builder carries shared state while assembling a network.
type builder struct {
	net *nn.Network
	r   *rng.RNG
	n   int // running count of conv/fc layers for naming
}

func (b *builder) conv(in int, inC, outC, k, stride, pad int, gain float64) int {
	c := nn.NewConv2D(inC, outC, k, stride, pad)
	c.InitHe(b.r, gain)
	b.n++
	id := b.net.AddNode(fmt.Sprintf("conv%d", b.n), c, in)
	return id
}

func (b *builder) convReLU(in int, inC, outC, k, stride, pad int) int {
	id := b.conv(in, inC, outC, k, stride, pad, 1)
	return b.net.AddNode(fmt.Sprintf("relu%d", b.n), nn.ReLU{}, id)
}

func (b *builder) dwConvReLU(in int, c, k, stride, pad int) int {
	dw := nn.NewDepthwiseConv2D(c, k, stride, pad)
	dw.InitHe(b.r, 1)
	b.n++
	id := b.net.AddNode(fmt.Sprintf("dwconv%d", b.n), dw, in)
	return b.net.AddNode(fmt.Sprintf("relu%d", b.n), nn.ReLU{}, id)
}

func (b *builder) maxPool(in, k, s int) int {
	return b.net.AddNode(fmt.Sprintf("pool@%d", in), nn.NewMaxPool2D(k, s), in)
}

// markFCNotAnalyzable clears the Analyzable flag on fully connected
// layers: "Stripes ignored the fully connected layers, so we did the
// same for AlexNet, NiN, GoogleNet and VGG-19" (Sec. VI).
func markFCNotAnalyzable(net *nn.Network) {
	for _, nd := range net.Nodes {
		if nd.Layer != nil && nd.Layer.Kind() == "fc" {
			nd.Analyzable = false
		}
	}
}

// --- AlexNet-sim: 5 conv layers + 3 FC (FC not analyzable). ---

func buildAlexNet(r *rng.RNG) *nn.Network {
	net := nn.NewNetwork("alexnet", []int{3, 16, 16}, numClasses)
	b := &builder{net: net, r: r}
	x := b.convReLU(0, 3, 16, 3, 1, 1) // conv1 16×16
	x = b.maxPool(x, 2, 2)             // 8×8
	x = b.convReLU(x, 16, 24, 3, 1, 1) // conv2
	x = b.maxPool(x, 2, 2)             // 4×4
	x = b.convReLU(x, 24, 32, 3, 1, 1) // conv3
	x = b.convReLU(x, 32, 32, 3, 1, 1) // conv4
	x = b.convReLU(x, 32, 24, 3, 1, 1) // conv5
	x = b.maxPool(x, 2, 2)             // 2×2
	x = net.AddNode("flatten", nn.Flatten{}, x)
	fc6 := nn.NewDense(24*2*2, 48)
	fc6.InitHe(r, 1)
	x = net.AddNode("fc6", fc6, x)
	x = net.AddNode("relu_fc6", nn.ReLU{}, x)
	fc7 := nn.NewDense(48, 32)
	fc7.InitHe(r, 1)
	x = net.AddNode("fc7", fc7, x)
	x = net.AddNode("relu_fc7", nn.ReLU{}, x)
	fc8 := nn.NewDense(32, numClasses)
	fc8.InitHe(r, 1)
	net.AddNode("fc8", fc8, x)
	markFCNotAnalyzable(net)
	return net
}

// --- NiN-sim: 4 mlpconv blocks of (3×3 conv + two 1×1 convs) = 12
// conv layers, global average pooling head. ---

func buildNiN(r *rng.RNG) *nn.Network {
	net := nn.NewNetwork("nin", []int{3, 16, 16}, numClasses)
	b := &builder{net: net, r: r}
	widths := []int{16, 24, 32, numClasses}
	x := 0
	inC := 3
	for blk, w := range widths {
		x = b.convReLU(x, inC, w, 3, 1, 1) // mlpconv 3×3
		x = b.convReLU(x, w, w, 1, 1, 0)   // cccp a
		x = b.convReLU(x, w, w, 1, 1, 0)   // cccp b
		if blk < len(widths)-1 {
			x = b.maxPool(x, 2, 2)
		}
		inC = w
	}
	net.AddNode("gap", nn.GlobalAvgPool{}, x)
	markFCNotAnalyzable(net)
	return net
}

// --- VGG-19-sim: 16 conv layers in blocks of (2,2,4,4,4) + 3 FC. ---

func buildVGG19(r *rng.RNG) *nn.Network {
	net := nn.NewNetwork("vgg19", []int{3, 16, 16}, numClasses)
	b := &builder{net: net, r: r}
	blocks := []struct{ n, w int }{{2, 8}, {2, 16}, {4, 24}, {4, 32}, {4, 32}}
	x := 0
	inC := 3
	for bi, blk := range blocks {
		for i := 0; i < blk.n; i++ {
			x = b.convReLU(x, inC, blk.w, 3, 1, 1)
			inC = blk.w
		}
		if bi < 4 { // pool after the first four blocks: 16→8→4→2→1
			x = b.maxPool(x, 2, 2)
		}
	}
	x = net.AddNode("flatten", nn.Flatten{}, x)
	fcIn := 32 * 1 * 1
	fc1 := nn.NewDense(fcIn, 48)
	fc1.InitHe(r, 1)
	x = net.AddNode("fc1", fc1, x)
	x = net.AddNode("relu_fc1", nn.ReLU{}, x)
	fc2 := nn.NewDense(48, 32)
	fc2.InitHe(r, 1)
	x = net.AddNode("fc2", fc2, x)
	x = net.AddNode("relu_fc2", nn.ReLU{}, x)
	fc3 := nn.NewDense(32, numClasses)
	fc3.InitHe(r, 1)
	net.AddNode("fc3", fc3, x)
	markFCNotAnalyzable(net)
	return net
}

// --- GoogleNet-sim: 3 stem convs + 9 inception modules × 6 convs = 57
// conv layers, GAP head (the paper counts 57 analyzable layers). ---

func buildGoogleNet(r *rng.RNG) *nn.Network {
	net := nn.NewNetwork("googlenet", []int{3, 16, 16}, numClasses)
	b := &builder{net: net, r: r}
	// Stem: 3 convs (7×7-ish reduced to 3×3 at this scale).
	x := b.convReLU(0, 3, 8, 3, 1, 1) // conv1
	x = b.maxPool(x, 2, 2)            // 8×8
	x = b.convReLU(x, 8, 8, 1, 1, 0)  // conv2 reduce
	x = b.convReLU(x, 8, 16, 3, 1, 1) // conv3
	inC := 16

	incep := func(x, inC int, c1, cr3, c3, cr5, c5, cp int) (int, int) {
		b1 := b.convReLU(x, inC, c1, 1, 1, 0)
		b2 := b.convReLU(x, inC, cr3, 1, 1, 0)
		b2 = b.convReLU(b2, cr3, c3, 3, 1, 1)
		b3 := b.convReLU(x, inC, cr5, 1, 1, 0)
		b3 = b.convReLU(b3, cr5, c5, 5, 1, 2)
		// Pool branch: 2×2 stride-1 pooling would change the spatial
		// size; use a stride-1 3×3 *average* of the identity via 1×1
		// conv directly on x (pool-proj). The projection conv is what
		// the paper's 6-conv-per-module count includes.
		b4 := b.convReLU(x, inC, cp, 1, 1, 0)
		out := b.net.AddNode(fmt.Sprintf("concat@%d", x), nn.Concat{}, b1, b2, b3, b4)
		return out, c1 + c3 + c5 + cp
	}

	// 9 inception modules: 2 (8×8) + pool + 5 (4×4) + pool + 2 (2×2).
	x, inC = incep(x, inC, 4, 4, 6, 2, 3, 3) // 3a
	x, inC = incep(x, inC, 4, 4, 6, 2, 3, 3) // 3b
	x = b.maxPool(x, 2, 2)                   // 4×4
	x, inC = incep(x, inC, 6, 4, 6, 2, 3, 3) // 4a
	x, inC = incep(x, inC, 6, 4, 6, 2, 3, 3) // 4b
	x, inC = incep(x, inC, 6, 4, 6, 2, 3, 3) // 4c
	x, inC = incep(x, inC, 6, 4, 6, 2, 3, 3) // 4d
	x, inC = incep(x, inC, 6, 4, 8, 2, 4, 4) // 4e
	x = b.maxPool(x, 2, 2)                   // 2×2
	x, inC = incep(x, inC, 8, 4, 8, 2, 4, 4) // 5a
	x, inC = incep(x, inC, 8, 4, 8, 2, 4, 4) // 5b

	// GAP head + FC classifier; the FC is marked not analyzable below so
	// the analyzable count stays at 57 = 3 stem + 9×6 convs.
	x = net.AddNode("gap", nn.GlobalAvgPool{}, x)
	fc := nn.NewDense(inC, numClasses)
	fc.InitHe(r, 1)
	net.AddNode("fc", fc, x)
	markFCNotAnalyzable(net)
	return net
}

// --- ResNet-sim: conv1 + bottleneck stages + FC. ResNet-50 uses
// (3,4,6,3) blocks → 1 + 3·16 + 4 downsample projections + 1 FC = 54
// analyzable layers; ResNet-152 uses (3,8,36,3) → 156. All layers
// (including FC) are analyzable, matching the paper's layer counts. ---

func buildResNet(r *rng.RNG, name string, blocks []int) *nn.Network {
	net := nn.NewNetwork(name, []int{3, 8, 8}, numClasses)
	b := &builder{net: net, r: r}
	width := 8                            // stage-1 bottleneck output channels
	x := b.convReLU(0, 3, width, 3, 1, 1) // conv1, 8×8
	inC := width

	for stage, nblocks := range blocks {
		// 10, 12, 14, 16: stage-0 output differs from conv1's width so
		// every stage (like the real ResNet) starts with a projection
		// shortcut — that keeps the analyzable layer counts at exactly
		// 54 / 156.
		outC := width + 2 + 2*stage
		mid := maxInt(outC/2, 2)
		stride := 1
		if stage > 0 && stage%2 == 1 {
			stride = 2 // downsample twice: 8×8 → 4×4 → 2×2
		}
		for blk := 0; blk < nblocks; blk++ {
			s := 1
			if blk == 0 {
				s = stride
			}
			// Main branch: 1×1 → 3×3 → 1×1, last conv near-zero gain so
			// the deep net starts near identity (Fixup-style, replaces
			// batch normalization).
			m := b.conv(x, inC, mid, 1, s, 0, 1)
			m = net.AddNode(fmt.Sprintf("relu%d", b.n), nn.ReLU{}, m)
			m = b.conv(m, mid, mid, 3, 1, 1, 1)
			m = net.AddNode(fmt.Sprintf("relu%d", b.n), nn.ReLU{}, m)
			m = b.conv(m, mid, outC, 1, 1, 0, 0.05)
			// Shortcut: identity, or 1×1 projection when shape changes.
			short := x
			if blk == 0 && (inC != outC || s != 1) {
				short = b.conv(x, inC, outC, 1, s, 0, 1)
			}
			x = net.AddNode(fmt.Sprintf("add@%d", m), nn.Add{}, m, short)
			x = net.AddNode(fmt.Sprintf("relu%d_out", b.n), nn.ReLU{}, x)
			inC = outC
		}
	}
	x = net.AddNode("gap", nn.GlobalAvgPool{}, x)
	fc := nn.NewDense(inC, numClasses)
	fc.InitHe(r, 1)
	net.AddNode("fc", fc, x)
	// ResNets keep FC analyzable (paper layer counts include it).
	return net
}

// --- SqueezeNet-sim: conv1 + 8 fire modules × 3 convs + conv10 = 26
// analyzable layers. ---

func buildSqueezeNet(r *rng.RNG) *nn.Network {
	net := nn.NewNetwork("squeezenet", []int{3, 16, 16}, numClasses)
	b := &builder{net: net, r: r}
	x := b.convReLU(0, 3, 12, 3, 1, 1) // conv1
	x = b.maxPool(x, 2, 2)             // 8×8
	inC := 12

	fire := func(x, inC, squeeze, expand int) (int, int) {
		s := b.convReLU(x, inC, squeeze, 1, 1, 0)
		e1 := b.convReLU(s, squeeze, expand, 1, 1, 0)
		e3 := b.convReLU(s, squeeze, expand, 3, 1, 1)
		out := b.net.AddNode(fmt.Sprintf("fireconcat@%d", x), nn.Concat{}, e1, e3)
		return out, 2 * expand
	}

	x, inC = fire(x, inC, 4, 8)                 // fire2
	x, inC = fire(x, inC, 4, 8)                 // fire3
	x = b.maxPool(x, 2, 2)                      // 4×4
	x, inC = fire(x, inC, 6, 10)                // fire4
	x, inC = fire(x, inC, 6, 10)                // fire5
	x = b.maxPool(x, 2, 2)                      // 2×2
	x, inC = fire(x, inC, 6, 12)                // fire6
	x, inC = fire(x, inC, 6, 12)                // fire7
	x, inC = fire(x, inC, 8, 12)                // fire8
	x, inC = fire(x, inC, 8, 12)                // fire9
	x = b.convReLU(x, inC, numClasses, 1, 1, 0) // conv10
	net.AddNode("gap", nn.GlobalAvgPool{}, x)
	return net
}

// --- MobileNet-sim: conv1 + 13 × (depthwise + pointwise) + FC = 28
// analyzable layers. ---

func buildMobileNet(r *rng.RNG) *nn.Network {
	net := nn.NewNetwork("mobilenet", []int{3, 16, 16}, numClasses)
	b := &builder{net: net, r: r}
	x := b.convReLU(0, 3, 8, 3, 2, 1) // conv1, 8×8
	inC := 8
	// (outC, stride) for the 13 separable blocks, scaled from the
	// MobileNet-v1 schedule.
	plan := []struct{ c, s int }{
		{12, 1}, {16, 2}, {16, 1}, {24, 2}, {24, 1},
		{32, 1}, {32, 1}, {32, 1}, {32, 1}, {32, 1},
		{32, 1}, {40, 2}, {40, 1},
	}
	for _, p := range plan {
		x = b.dwConvReLU(x, inC, 3, p.s, 1)
		x = b.convReLU(x, inC, p.c, 1, 1, 0)
		inC = p.c
	}
	x = net.AddNode("gap", nn.GlobalAvgPool{}, x)
	fc := nn.NewDense(inC, numClasses)
	fc.InitHe(r, 1)
	net.AddNode("fc", fc, x)
	// MobileNet keeps FC analyzable (28 = 1 + 26 + 1).
	return net
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
