package zoo

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mupod/internal/dataset"
	"mupod/internal/nn"
	"mupod/internal/train"
)

// Seed is the global reproducibility seed for weights, datasets and
// training batches. Changing it regenerates the whole zoo.
const Seed uint64 = 20190325 // DATE 2019 conference date

// cacheVersion invalidates cached trained parameters whenever the
// architectures, dataset or trainer change incompatibly.
const cacheVersion = "v1"

// Data returns the train/test splits for an architecture (16×16 for
// most networks, 8×8 for the ResNets). Splits are deterministic and
// shared between architectures of the same input size.
func Data(a Arch) (tr, te *dataset.Dataset) {
	return dataForSize(InputSize(a))
}

var (
	dataMu    sync.Mutex
	dataCache = map[int][2]*dataset.Dataset{}
)

func dataForSize(size int) (tr, te *dataset.Dataset) {
	dataMu.Lock()
	defer dataMu.Unlock()
	if d, ok := dataCache[size]; ok {
		return d[0], d[1]
	}
	cfg := dataset.Config{
		H: size, W: size,
		Train: 600, Test: 400,
		Seed: Seed + uint64(size),
	}
	a, b := dataset.Generate(cfg)
	dataCache[size] = [2]*dataset.Dataset{a, b}
	return a, b
}

// trainConfig returns the per-architecture training hyperparameters
// (Adam + warmup + cosine decay; settings found by a small sweep — all
// eight networks reach ≥95% test accuracy). Budgets are sized for a
// single CPU core.
func trainConfig(a Arch) train.Config {
	cfg := train.Config{
		Optimizer: train.Adam,
		LR:        0.003,
		BatchSize: 8,
		Steps:     250,
		Seed:      Seed,
	}
	switch a {
	case GoogleNet, ResNet50:
		cfg.LR = 0.01
	case VGG19:
		cfg.LR = 0.001
		cfg.Steps = 600
	case ResNet152, SqueezeNet:
		cfg.Steps = 600
	case MobileNet:
		cfg.LR = 0.001
		cfg.Steps = 1200
	case NiN:
		cfg.LR = 0.002
		cfg.Steps = 600
	}
	return cfg
}

// CacheDir returns the directory trained parameters are cached in:
// $MUPOD_CACHE if set, else a per-user directory under os.TempDir().
func CacheDir() string {
	if d := os.Getenv("MUPOD_CACHE"); d != "" {
		return d
	}
	return filepath.Join(os.TempDir(), "mupod-cache")
}

var (
	loadMu sync.Mutex
	loaded = map[Arch]*nn.Network{}
)

// Load returns the trained network for an architecture, training it on
// first use and caching the parameters both in memory and on disk.
// Training is deterministic, so the on-disk cache is purely a speedup.
func Load(a Arch) (*nn.Network, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	if net, ok := loaded[a]; ok {
		return net, nil
	}
	net := Build(a, Seed)
	path := filepath.Join(CacheDir(), fmt.Sprintf("%s-%s-%d.params.gz", a, cacheVersion, Seed))
	if err := net.LoadParams(path); err == nil {
		loaded[a] = net
		return net, nil
	}
	tr, _ := Data(a)
	train.Run(net, tr, trainConfig(a))
	if err := os.MkdirAll(CacheDir(), 0o755); err == nil {
		// Cache write failures are non-fatal: the net is already trained.
		_ = net.SaveParams(path)
	}
	loaded[a] = net
	return net, nil
}

// MustLoad is Load but panics on error (none of the current paths can
// fail, but the API keeps the error for future weight-file loading).
func MustLoad(a Arch) *nn.Network {
	net, err := Load(a)
	if err != nil {
		panic(fmt.Sprintf("zoo: loading %s: %v", a, err))
	}
	return net
}

// TestAccuracy returns the trained network's float64 top-1 accuracy on
// the held-out split (the "exact" accuracy every relative-drop
// constraint in the paper is measured against).
func TestAccuracy(a Arch) (float64, error) {
	net, err := Load(a)
	if err != nil {
		return 0, err
	}
	_, te := Data(a)
	return train.Accuracy(net, te, 32), nil
}
