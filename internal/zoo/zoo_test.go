package zoo

import (
	"testing"

	"mupod/internal/train"
)

func TestAnalyzableLayerCountsMatchPaper(t *testing.T) {
	// Table III column "# layers": the sim topologies must reproduce the
	// paper's analyzable layer counts exactly.
	for _, a := range All {
		net := Build(a, Seed)
		got := len(net.AnalyzableNodes())
		if want := AnalyzableLayers[a]; got != want {
			t.Errorf("%s: %d analyzable layers, paper says %d", a, got, want)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, a := range []Arch{AlexNet, ResNet50} {
		n1 := Build(a, Seed)
		n2 := Build(a, Seed)
		p1, p2 := n1.Params(), n2.Params()
		for i := range p1 {
			for j := range p1[i].Value.Data {
				if p1[i].Value.Data[j] != p2[i].Value.Data[j] {
					t.Fatalf("%s: Build not deterministic", a)
				}
			}
		}
	}
}

func TestBuildDifferentSeedsDiffer(t *testing.T) {
	n1 := Build(AlexNet, 1)
	n2 := Build(AlexNet, 2)
	p1, p2 := n1.Params(), n2.Params()
	same := true
	for j := range p1[0].Value.Data {
		if p1[0].Value.Data[j] != p2[0].Value.Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical weights")
	}
}

func TestBuildUnknownArchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(Arch("nope"), 1)
}

func TestForwardShapes(t *testing.T) {
	for _, a := range All {
		net := Build(a, Seed)
		_, te := Data(a)
		out := net.Forward(te.Batch(0, 2))
		if out.Shape[0] != 2 || out.Shape[1] != 10 {
			t.Errorf("%s: output shape %v", a, out.Shape)
		}
	}
}

func TestDataDeterministicAndSized(t *testing.T) {
	tr1, te1 := Data(AlexNet)
	tr2, te2 := Data(AlexNet)
	if tr1 != tr2 || te1 != te2 {
		t.Fatal("Data must return the cached splits")
	}
	if tr1.Len() != 600 || te1.Len() != 400 {
		t.Fatalf("split sizes %d/%d", tr1.Len(), te1.Len())
	}
	if tr1.H != InputSize(AlexNet) {
		t.Fatalf("image size %d", tr1.H)
	}
	trR, _ := Data(ResNet152)
	if trR.H != 8 {
		t.Fatalf("resnet data size %d", trR.H)
	}
}

func TestInputSizes(t *testing.T) {
	if InputSize(ResNet50) != 8 || InputSize(ResNet152) != 8 {
		t.Fatal("ResNets should use 8×8 inputs")
	}
	if InputSize(VGG19) != 16 {
		t.Fatal("VGG should use 16×16 inputs")
	}
}

func TestResNetStructure(t *testing.T) {
	net := Build(ResNet50, Seed)
	// conv1 + 16 blocks × 3 + 4 projections + fc = 54 (checked above);
	// here verify the residual adds exist.
	adds := 0
	for _, nd := range net.Nodes {
		if nd.Layer != nil && nd.Layer.Kind() == "add" {
			adds++
		}
	}
	if adds != 16 {
		t.Fatalf("resnet50 has %d residual adds, want 16", adds)
	}
}

func TestGoogleNetConcats(t *testing.T) {
	net := Build(GoogleNet, Seed)
	concats := 0
	for _, nd := range net.Nodes {
		if nd.Layer != nil && nd.Layer.Kind() == "concat" {
			concats++
		}
	}
	if concats != 9 {
		t.Fatalf("googlenet has %d inception concats, want 9", concats)
	}
}

func TestMobileNetDepthwise(t *testing.T) {
	net := Build(MobileNet, Seed)
	dw := 0
	for _, nd := range net.Nodes {
		if nd.Layer != nil && nd.Layer.Kind() == "dwconv" {
			dw++
		}
	}
	if dw != 13 {
		t.Fatalf("mobilenet has %d depthwise convs, want 13", dw)
	}
}

func TestFCAnalyzabilityFollowsPaper(t *testing.T) {
	// Stripes convention: FC excluded for AlexNet/NiN/GoogleNet/VGG-19,
	// included for the ResNets and MobileNet.
	excluded := map[Arch]bool{AlexNet: true, NiN: true, GoogleNet: true, VGG19: true}
	for _, a := range All {
		net := Build(a, Seed)
		for _, nd := range net.Nodes {
			if nd.Layer == nil || nd.Layer.Kind() != "fc" {
				continue
			}
			if excluded[a] && nd.Analyzable {
				t.Errorf("%s: FC %s should not be analyzable", a, nd.Name)
			}
			if !excluded[a] && !nd.Analyzable {
				t.Errorf("%s: FC %s should be analyzable", a, nd.Name)
			}
		}
	}
}

// TestTrainedAccuracy trains (or loads) the full zoo — minutes of work
// on a cold cache, so it is skipped in -short mode.
func TestTrainedAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo training skipped in -short mode")
	}
	for _, a := range All {
		net := MustLoad(a)
		_, te := Data(a)
		acc := train.Accuracy(net, te, 32)
		if acc < 0.60 {
			t.Errorf("%s: test accuracy %.3f < 0.60 — zoo training regressed", a, acc)
		}
	}
}

func TestCacheRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("depends on trained zoo")
	}
	// Loading twice must return the identical in-memory network.
	n1 := MustLoad(AlexNet)
	n2 := MustLoad(AlexNet)
	if n1 != n2 {
		t.Fatal("Load did not memoize")
	}
}
