// Package mupod is an open-source reimplementation of "Multi-objective
// Precision Optimization of Deep Neural Networks for Edge Devices"
// (Ho, Vaddi, Wong — DATE 2019): post-training, layer-granular
// fixed-point bitwidth allocation for CNN inference, driven by a
// measurable statistical property of rounding-error propagation.
//
// The method in one paragraph: quantizing the inputs of layer K to a
// fixed-point format adds uniform noise with boundary Δ_XK; that noise
// arrives at the network output as an approximately Gaussian error
// whose standard deviation σ_{Y_K→Ł} relates LINEARLY to Δ_XK
// (Δ_XK ≈ λ_K·σ_{Y_K→Ł} + θ_K, Eq. 5 — constants measurable by error
// injection and linear regression). Given a user accuracy constraint,
// a binary search finds the tolerable output error σ_YŁ, a convex
// optimization splits that budget across layers to minimize any
// ρ-weighted bit count (bandwidth, MAC energy, or a custom criterion),
// and Eq. 7 converts each layer's share into a concrete I.F format.
//
// Quick start:
//
//	net := mupod.MustLoad(mupod.AlexNet)          // trained model zoo
//	_, test := mupod.Data(mupod.AlexNet)          // synthetic dataset
//	res, err := mupod.Run(net, test, mupod.Config{
//	    Search:    mupod.SearchOptions{RelDrop: 0.01},
//	    Objective: mupod.MinimizeMACBits,
//	})
//	fmt.Println(res.Allocation.Bits())            // per-layer widths
//	acc := res.Allocation.Validate(net, test, 0)  // real quantized inference
//
// The facade re-exports the full pipeline; the implementation lives in
// internal/{profile,search,optimize,core,...} — see DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured record.
package mupod

import (
	"context"
	"io"
	"net/http"

	"mupod/internal/accel"
	"mupod/internal/baseline"
	"mupod/internal/core"
	"mupod/internal/dataset"
	"mupod/internal/energy"
	"mupod/internal/exec"
	"mupod/internal/fixedpoint"
	"mupod/internal/fxnet"
	"mupod/internal/kernels"
	"mupod/internal/netdesc"
	"mupod/internal/nn"
	"mupod/internal/obs"
	"mupod/internal/optimize"
	"mupod/internal/pareto"
	"mupod/internal/profile"
	"mupod/internal/refcheck"
	"mupod/internal/search"
	"mupod/internal/serve"
	"mupod/internal/tensor"
	"mupod/internal/weights"
	"mupod/internal/zoo"
)

// Core pipeline types.
type (
	// Network is the CNN inference DAG (see internal/nn).
	Network = nn.Network
	// Tensor is a dense float64 NCHW array (see internal/tensor).
	Tensor = tensor.Tensor
	// Dataset is a labelled image split (see internal/dataset).
	Dataset = dataset.Dataset
	// Profile holds the fitted λ_K/θ_K error model of every layer.
	Profile = profile.Profile
	// LayerProfile is one layer's fitted model and counts.
	LayerProfile = profile.LayerProfile
	// ProfileConfig tunes the error-injection measurement.
	ProfileConfig = profile.Config
	// SearchOptions tunes the σ_YŁ binary search.
	SearchOptions = search.Options
	// SearchResult reports the found σ_YŁ and the search trace.
	SearchResult = search.Result
	// Config collects the tunables of a full pipeline run.
	Config = core.Config
	// Result is the output of a full pipeline run.
	Result = core.Result
	// Allocation is a complete per-layer bitwidth assignment.
	Allocation = core.Allocation
	// LayerAlloc is one layer's assigned format and metadata.
	LayerAlloc = core.LayerAlloc
	// Objective selects the ρ weights of Eq. 8.
	Objective = core.Objective
	// Format is a signed fixed-point format I.F.
	Format = fixedpoint.Format
	// Scheme selects the σ→accuracy validation procedure.
	Scheme = search.Scheme
	// Arch names a model-zoo architecture.
	Arch = zoo.Arch
	// MACModel is the bitwidth-dependent MAC energy model.
	MACModel = energy.MACModel
	// AccelConfig describes the bit-serial accelerator simulator.
	AccelConfig = accel.Config
	// AccelReport is the simulated execution of an allocation.
	AccelReport = accel.Report
	// BaselineOptions tunes the comparison searches.
	BaselineOptions = baseline.Options
	// BaselineResult wraps a baseline allocation with its search cost.
	BaselineResult = baseline.SearchResult

	// WeightProfile holds the per-layer weight-noise model (the
	// repository's joint activation+weight extension).
	WeightProfile = weights.Profile
	// WeightAllocation assigns a fixed-point format to every layer's
	// weights.
	WeightAllocation = weights.Allocation
	// JointConfig tunes the joint activation+weight allocation.
	JointConfig = weights.JointConfig
	// ParetoPoint is one operating point of the two-objective frontier.
	ParetoPoint = pareto.Point
	// ParetoConfig tunes the frontier sweep.
	ParetoConfig = pareto.Config
	// ParetoNSGA2Config tunes the genetic front search.
	ParetoNSGA2Config = pareto.NSGA2Config
	// ParetoNSGA2Result is a finished genetic front search.
	ParetoNSGA2Result = pareto.NSGA2Result
	// FixedPointConfig selects the weight formats of the integer
	// execution path.
	FixedPointConfig = fxnet.Config
	// FixedPointReport audits integer execution (accumulator widths).
	FixedPointReport = fxnet.Report

	// ServeConfig tunes the asynchronous job manager (worker pool,
	// queue depth, per-stage timeouts, profile-cache capacity).
	ServeConfig = serve.Config
	// ServeRequest is one precision-optimization job submission.
	ServeRequest = serve.JobRequest
	// ServeJob is a job moving through the queue.
	ServeJob = serve.Job
	// ServeJobView is the JSON snapshot of a job.
	ServeJobView = serve.JobView
	// ServeJobResult is the payload of a finished job.
	ServeJobResult = serve.JobResult
	// ServeState is a job lifecycle state (queued → running → done /
	// failed / cancelled).
	ServeState = serve.State
	// JobManager owns the job table, queue and worker pool.
	JobManager = serve.Manager

	// KernelPolicy selects the compute backend of every forward pass
	// ("naive", "blocked" or "parallel"; the zero value is the default
	// backend) and bounds the intra-op parallelism of "parallel". Set it
	// on Config.Kernel, ProfileConfig.Kernel, SearchOptions.Kernel,
	// BaselineOptions.Kernel or ServeConfig.Kernel (see
	// internal/kernels).
	KernelPolicy = kernels.Policy

	// MetricsRegistry is the shared Prometheus-style metrics registry
	// (see internal/obs).
	MetricsRegistry = obs.Registry
	// LatencyHistogram is an HDR-style log-linear latency recorder:
	// lock-free Observe, ≤1/32 relative bucketing error from nanoseconds
	// to hours, mergeable snapshots with exact-count quantiles.
	LatencyHistogram = obs.LatencyHistogram
	// LatencySnapshot is a point-in-time, mergeable copy of a
	// LatencyHistogram (p50/p90/p99/p999 queries, min/max/mean).
	LatencySnapshot = obs.LatencySnapshot
	// Tracer records pipeline spans for Chrome trace-event export.
	Tracer = obs.Tracer
	// Span is one timed region of a traced pipeline run.
	Span = obs.Span
)

// Accelerator execution styles.
const (
	StripesMode = accel.Stripes
	LoomMode    = accel.Loom
)

// Objectives (Sec. V-D).
const (
	MinimizeInputBits = core.MinimizeInputBits
	MinimizeMACBits   = core.MinimizeMACBits
	CustomRho         = core.CustomRho
)

// Validation schemes (Sec. V-C).
const (
	Scheme1Uniform  = search.Scheme1Uniform
	Scheme2Gaussian = search.Scheme2Gaussian
)

// Model zoo architectures (Table III).
const (
	AlexNet    = zoo.AlexNet
	NiN        = zoo.NiN
	GoogleNet  = zoo.GoogleNet
	VGG19      = zoo.VGG19
	ResNet50   = zoo.ResNet50
	ResNet152  = zoo.ResNet152
	SqueezeNet = zoo.SqueezeNet
	MobileNet  = zoo.MobileNet
)

// Architectures lists the zoo in Table III order.
var Architectures = zoo.All

// Default40nm is the MAC energy model calibrated per DESIGN.md.
var Default40nm = energy.Default40nm

// MustLoad returns the trained zoo network for an architecture,
// training it on first use (deterministic; results are cached).
func MustLoad(a Arch) *Network { return zoo.MustLoad(a) }

// Data returns the train/test splits used with an architecture.
func Data(a Arch) (train, test *Dataset) { return zoo.Data(a) }

// Run executes the complete pipeline: profile → σ search → ξ
// optimization → allocation (Sec. V). Set cfg.Workers to fan the
// profiling replays and accuracy evaluations across a worker pool
// (0 = GOMAXPROCS); every stage is engineered to be bit-identical at
// any worker count, so parallelism only trades CPU for latency.
func Run(net *Network, ds *Dataset, cfg Config) (*Result, error) {
	return core.Run(net, ds, cfg)
}

// RunContext is Run with cancellation threaded through every stage.
func RunContext(ctx context.Context, net *Network, ds *Dataset, cfg Config) (*Result, error) {
	return core.RunContext(ctx, net, ds, cfg)
}

// ProfileNetwork measures λ_K and θ_K for every analyzable layer
// (Sec. V-A).
func ProfileNetwork(net *Network, ds *Dataset, cfg ProfileConfig) (*Profile, error) {
	return profile.Run(net, ds, cfg)
}

// ProfileNetworkContext is ProfileNetwork with cancellation (ctx is
// checked between injection replays).
func ProfileNetworkContext(ctx context.Context, net *Network, ds *Dataset, cfg ProfileConfig) (*Profile, error) {
	return profile.RunContext(ctx, net, ds, cfg)
}

// SearchSigma binary-searches the output error budget σ_YŁ that meets
// the accuracy constraint (Sec. V-C).
func SearchSigma(net *Network, prof *Profile, ds *Dataset, opts SearchOptions) (*SearchResult, error) {
	return search.Run(net, prof, ds, opts)
}

// SearchSigmaContext is SearchSigma with cancellation (ctx is checked
// before every accuracy evaluation).
func SearchSigmaContext(ctx context.Context, net *Network, prof *Profile, ds *Dataset, opts SearchOptions) (*SearchResult, error) {
	return search.RunContext(ctx, net, prof, ds, opts)
}

// OptimizeXi solves Eq. 8 and returns the optimal error decomposition.
func OptimizeXi(prof *Profile, sigmaYL float64, cfg Config) ([]float64, error) {
	return core.OptimizeXi(prof, sigmaYL, cfg)
}

// AllocationFromXi converts a ξ decomposition into concrete formats.
func AllocationFromXi(prof *Profile, sigmaYL float64, xi []float64, objective string) (*Allocation, error) {
	return core.FromXi(prof, sigmaYL, xi, objective, 0)
}

// AllocateGuarded solves ξ for the searched σ and, when cfg.Guard is
// set, shrinks σ until the allocation passes REAL quantized validation
// (see core.Allocate). Use this instead of OptimizeXi+AllocationFromXi
// when reusing one profile across several constraints or objectives.
func AllocateGuarded(net *Network, ds *Dataset, prof *Profile, sr *SearchResult, cfg Config) (*Allocation, error) {
	alloc, _, _, err := core.Allocate(net, ds, prof, sr, cfg)
	return alloc, err
}

// AllocateGuardedContext is AllocateGuarded with cancellation (the
// guard loop checks ctx before every validation pass).
func AllocateGuardedContext(ctx context.Context, net *Network, ds *Dataset, prof *Profile, sr *SearchResult, cfg Config) (*Allocation, error) {
	alloc, _, _, err := core.AllocateContext(ctx, net, ds, prof, sr, cfg)
	return alloc, err
}

// NewJobManager starts the asynchronous job manager of the serving
// subsystem: a bounded queue drained by a worker pool, sharing
// profiling work through a content-addressed cache (internal/serve).
// With cfg.DataDir set the job table is durable across restarts; the
// error is non-nil only when that durable state cannot be opened.
func NewJobManager(cfg ServeConfig) (*JobManager, error) { return serve.New(cfg) }

// NewServeHandler exposes a job manager over HTTP — the API cmd/mupodd
// serves (POST/GET/DELETE /v1/jobs, /healthz, /metrics).
func NewServeHandler(m *JobManager) http.Handler { return serve.NewHandler(m) }

// UniformAllocation builds the smallest-uniform-bitwidth style baseline
// assignment at the given total width.
func UniformAllocation(prof *Profile, bits int) *Allocation { return core.Uniform(prof, bits) }

// SmallestUniform finds the narrowest uniform bitwidth meeting the
// constraint (the paper's fallback baseline).
func SmallestUniform(net *Network, prof *Profile, ds *Dataset, o BaselineOptions) (*BaselineResult, error) {
	return baseline.SmallestUniform(net, prof, ds, o)
}

// StripesSearch runs the expensive per-layer dynamic search the paper
// competes against.
func StripesSearch(net *Network, prof *Profile, ds *Dataset, o BaselineOptions) (*BaselineResult, error) {
	return baseline.StripesSearch(net, prof, ds, o)
}

// UniformWeightSearch finds the smallest uniform weight bitwidth that,
// combined with the given activation allocation, meets the constraint
// (Sec. V-E).
func UniformWeightSearch(net *Network, alloc *Allocation, ds *Dataset, o BaselineOptions) (int, error) {
	return baseline.UniformWeightSearch(net, alloc, ds, o)
}

// SimulateAccelerator runs an allocation through the bit-serial
// (Stripes- or Loom-style) accelerator model.
func SimulateAccelerator(alloc *Allocation, cfg AccelConfig) (*AccelReport, error) {
	return accel.Simulate(alloc, cfg)
}

// ProfileWeights measures the weight-noise propagation constants of
// every analyzable layer (the joint-quantization extension; weights are
// restored afterwards).
func ProfileWeights(net *Network, ds *Dataset, cfg ProfileConfig) (*WeightProfile, error) {
	return weights.Run(net, ds, cfg)
}

// JointAllocate splits one output-error budget across both the
// activations and the weights of every layer (2Ł noise sources).
func JointAllocate(aprof *Profile, wprof *WeightProfile, sigmaYL float64, cfg JointConfig) (*Allocation, *WeightAllocation, error) {
	return weights.JointAllocate(aprof, wprof, sigmaYL, cfg)
}

// ValidateJoint measures real accuracy with both the activation and the
// weight formats applied.
func ValidateJoint(net *Network, ds *Dataset, n int, act *Allocation, w *WeightAllocation) float64 {
	return weights.Validate(net, ds, n, act, w)
}

// ParetoSweep solves a blend of the bandwidth and energy objectives for
// each α and returns one operating point per α.
func ParetoSweep(prof *Profile, sigmaYL float64, cfg ParetoConfig) ([]ParetoPoint, error) {
	return pareto.Sweep(prof, sigmaYL, cfg)
}

// ParetoFront filters sweep results to the non-dominated frontier.
func ParetoFront(points []ParetoPoint) []ParetoPoint {
	return pareto.NonDominated(points)
}

// ParetoNSGA2 runs the genetic front search, warm-started from the
// α-sweep: the archive of every evaluated point is filtered to the
// returned frontier, so its hypervolume weakly dominates the sweep's.
// Results are bit-identical at any worker count.
func ParetoNSGA2(ctx context.Context, prof *Profile, sigmaYL float64, cfg ParetoNSGA2Config) (*ParetoNSGA2Result, error) {
	return pareto.RunNSGA2(ctx, prof, sigmaYL, cfg)
}

// ParetoRefPoint picks a hypervolume reference point dominated by every
// finite point of the given fronts, with margin.
func ParetoRefPoint(fronts ...[]ParetoPoint) [2]float64 {
	return pareto.RefPoint(fronts...)
}

// ParetoHypervolume measures the area a frontier dominates up to ref —
// the standard scalar quality of a two-objective front (larger is
// better).
func ParetoHypervolume(points []ParetoPoint, ref [2]float64) float64 {
	return pareto.Hypervolume(points, ref)
}

// ParetoGD and ParetoIGD score a front against a reference front:
// generational distance is the mean distance from the front to the
// reference (convergence), inverted GD the reverse (coverage).
func ParetoGD(front, ref []ParetoPoint) float64 {
	return pareto.GenerationalDistance(front, ref)
}

// ParetoIGD is the inverted generational distance (see ParetoGD).
func ParetoIGD(front, ref []ParetoPoint) float64 {
	return pareto.InvertedGenerationalDistance(front, ref)
}

// ParetoSpread measures how evenly a front's points are distributed
// along the frontier (0 = perfectly uniform).
func ParetoSpread(points []ParetoPoint) float64 {
	return pareto.Spread(points)
}

// RunFixedPoint executes the network with TRUE integer arithmetic in
// every analyzable layer (inputs and weights scaled to int64,
// accumulation in the integer domain) and returns the logits plus the
// per-layer accumulator-width audit a hardware implementation needs.
func RunFixedPoint(net *Network, alloc *Allocation, cfg FixedPointConfig, x *Tensor) (*Tensor, *FixedPointReport, error) {
	return fxnet.Run(net, alloc, cfg, x)
}

// NewMetricsRegistry builds an empty metrics registry. Pass it to
// EnableEngineMetrics to collect the execution-engine and solver
// counters, and render it with (*MetricsRegistry).Write — the output is
// Prometheus text format.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewLatencyHistogram builds an unregistered latency histogram for
// client-side recording (cmd/mupod-loadgen uses these). For one that
// renders on a /metrics page use
// (*MetricsRegistry).LatencyHistogram(name, help, labels...).
func NewLatencyHistogram() *LatencyHistogram { return obs.NewLatencyHistogram() }

// RegisterRuntimeMetrics attaches the Go runtime gauges
// (mupod_go_goroutines, mupod_go_heap_bytes, mupod_go_gc_pause_seconds)
// to reg. The serving subsystem registers them on its own registry, so
// embedders running a JobManager need not call this themselves.
func RegisterRuntimeMetrics(reg *MetricsRegistry) { obs.RegisterRuntimeMetrics(reg) }

// EnableEngineMetrics registers the process-wide execution-engine
// counters (forwards, arena reuse, evaluator items/busy-seconds),
// compute-kernel dispatch counters and solver iteration counters on
// reg. Last call wins; the serving subsystem calls this on its own
// registry, so embedders running a JobManager need not call it
// themselves.
func EnableEngineMetrics(reg *MetricsRegistry) {
	exec.EnableMetrics(reg)
	kernels.EnableMetrics(reg)
	optimize.EnableMetrics(reg)
}

// KernelBackends lists the registered compute backends ("naive",
// "blocked", "parallel"), sorted; KernelDefault is the one a zero
// KernelPolicy selects. All backends satisfy the same differential
// contract against the reference kernels (≤1e-9 on the self-check
// nets); "blocked" and "parallel" are bit-identical to each other at
// any worker count, while "naive" accumulates in a different order.
func KernelBackends() []string { return kernels.Names() }

// KernelDefault is the backend name a zero KernelPolicy resolves to.
const KernelDefault = kernels.DefaultImpl

// NewTracer builds a span recorder holding up to maxSpans spans
// (<= 0 uses the default cap). Attach it with WithTracer; any pipeline
// stage run under that context records spans.
func NewTracer(maxSpans int) *Tracer { return obs.NewTracer(maxSpans) }

// WithTracer returns a context whose pipeline runs record spans into tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return obs.WithTracer(ctx, tr)
}

// SetupLogging installs the process slog default logger from a
// "level[,format]" spec (empty uses $MUPOD_LOG, then "info,text").
func SetupLogging(spec string) error {
	_, err := obs.Setup(spec)
	return err
}

// TraceToFile arms span recording on ctx and returns a flush function
// that writes the collected spans as a Chrome trace-event file (load it
// in chrome://tracing or ui.perfetto.dev). An empty path disables
// tracing; flush is then a no-op.
func TraceToFile(ctx context.Context, path string) (context.Context, func() error) {
	return obs.TraceToFile(ctx, path, 0)
}

// ParseNetwork reads a network description (see internal/netdesc for
// the format) and builds the network.
func ParseNetwork(r io.Reader) (*Network, error) { return netdesc.Parse(r) }

// WriteNetwork serializes a network's topology into the description
// language (parameters are saved separately via Network.SaveParams).
func WriteNetwork(w io.Writer, net *Network) error { return netdesc.Write(w, net) }

// SelfCheckOptions configures a differential self-check sweep (see
// internal/refcheck).
type SelfCheckOptions = refcheck.Options

// SelfCheckReport is the outcome of a self-check sweep; OK() reports
// whether every invariant held.
type SelfCheckReport = refcheck.Report

// SelfCheck runs the differential self-check: the optimized kernels,
// quantizer, solvers and search are verified against slow reference
// implementations and the paper's numerical invariants over the
// built-in test networks. Embedders can run it at startup or in CI to
// catch miscompiled or numerically-broken builds; cmd/mupod-selfcheck
// wraps it for the command line.
func SelfCheck(ctx context.Context, opts SelfCheckOptions) (*SelfCheckReport, error) {
	return refcheck.Run(ctx, opts)
}
