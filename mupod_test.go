package mupod

import (
	"testing"
)

// TestFacadeEndToEnd drives the whole public API surface the way the
// README quick start does. It uses the AlexNet zoo model (trained on
// first use, then cached) and small budgets.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo-backed facade test skipped in -short mode")
	}
	net := MustLoad(AlexNet)
	_, test := Data(AlexNet)

	prof, err := ProfileNetwork(net, test, ProfileConfig{Images: 16, Points: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prof.NumLayers() != 5 {
		t.Fatalf("AlexNet profile has %d layers", prof.NumLayers())
	}

	sr, err := SearchSigma(net, prof, test, SearchOptions{
		Scheme: Scheme2Gaussian, RelDrop: 0.05, EvalImages: 100, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{Objective: MinimizeMACBits}
	xi, err := OptimizeXi(prof, sr.SigmaYL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := AllocationFromXi(prof, sr.SigmaYL, xi, "opt_for_mac")
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Bits()) != 5 {
		t.Fatalf("allocation has %d layers", len(alloc.Bits()))
	}

	// Real quantized inference must stay within the relaxed constraint.
	acc := alloc.Validate(net, test, 0)
	if acc < sr.ExactAccuracy*(1-0.05)-0.03 {
		t.Fatalf("quantized accuracy %v vs exact %v", acc, sr.ExactAccuracy)
	}

	// Baselines and hardware models hang off the same allocation.
	uni, err := SmallestUniform(net, prof, test, BaselineOptions{RelDrop: 0.05, EvalImages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if uni.Allocation.EffectiveMACBits() < alloc.EffectiveMACBits()-0.5 {
		t.Errorf("optimized (%v) much worse than uniform baseline (%v)",
			alloc.EffectiveMACBits(), uni.Allocation.EffectiveMACBits())
	}

	rep, err := SimulateAccelerator(alloc, AccelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup <= 1 {
		t.Errorf("bit-serial speedup %v not > 1", rep.Speedup)
	}

	w, err := UniformWeightSearch(net, alloc, test, BaselineOptions{RelDrop: 0.05, EvalImages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Fatalf("weight bits %d", w)
	}

	e := alloc.MACEnergy(Default40nm, w)
	if e <= 0 {
		t.Fatalf("energy %v", e)
	}
}

func TestRunFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo-backed facade test skipped in -short mode")
	}
	net := MustLoad(AlexNet)
	_, test := Data(AlexNet)
	res, err := Run(net, test, Config{
		Profile:   ProfileConfig{Images: 16, Points: 8, Seed: 3},
		Search:    SearchOptions{Scheme: Scheme1Uniform, RelDrop: 0.05, EvalImages: 100, Seed: 4},
		Objective: MinimizeInputBits,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation == nil || res.Profile == nil || res.Search == nil {
		t.Fatal("incomplete result")
	}
	if got := len(Architectures); got != 8 {
		t.Fatalf("%d architectures", got)
	}
}
